#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bounding_box.h"
#include "core/local_model.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// Definition 6: properties of the complete set of specific core points.

class ScorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScorPropertyTest, SatisfiesDefinitionSix) {
  const SyntheticDataset synth = MakeBlobs(
      /*n=*/800, /*num_blobs=*/5, /*noise_fraction=*/0.1, 1.0, 2.0,
      /*seed=*/GetParam());
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  ASSERT_EQ(local.scor.size(),
            static_cast<std::size_t>(local.clustering.num_clusters));

  for (ClusterId c = 0; c < local.clustering.num_clusters; ++c) {
    const std::vector<PointId>& scor = local.scor[c];
    ASSERT_FALSE(scor.empty()) << "cluster " << c << " has no scor";
    for (const PointId s : scor) {
      // Condition 1: Scor_C ⊆ Cor_C — specific core points are core points
      // of their cluster.
      EXPECT_TRUE(local.clustering.is_core[s]);
      EXPECT_EQ(local.clustering.labels[s], c);
    }
    // Condition 2: pairwise distance > Eps.
    for (std::size_t i = 0; i < scor.size(); ++i) {
      for (std::size_t j = i + 1; j < scor.size(); ++j) {
        EXPECT_GT(Euclidean().Distance(synth.data.point(scor[i]),
                                       synth.data.point(scor[j])),
                  params.eps);
      }
    }
  }
  // Condition 3: every core point lies within Eps of a specific core point
  // of its cluster.
  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    if (!local.clustering.is_core[p]) continue;
    const ClusterId c = local.clustering.labels[p];
    bool covered = false;
    for (const PointId s : local.scor[c]) {
      if (Euclidean().Distance(synth.data.point(p), synth.data.point(s)) <=
          params.eps) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "core point " << p << " uncovered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScorPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Definition 7 and the coverage guarantee of both local models: every
// member of a local cluster lies inside the ε-range of at least one of
// the cluster's representatives. (This is what makes relabeling able to
// reconstruct the clusters; it follows from ε_s = Eps + max core
// distance for REP_Scor and from ε_c = max assigned distance for
// REP_kMeans.)

class ModelCoverageTest
    : public ::testing::TestWithParam<std::tuple<LocalModelType,
                                                 std::uint64_t>> {};

TEST_P(ModelCoverageTest, EveryClusterMemberIsCoveredBySomeRepresentative) {
  const auto [type, seed] = GetParam();
  const SyntheticDataset synth = MakeBlobs(600, 4, 0.15, 1.0, 2.0, seed);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model =
      BuildLocalModel(type, index, local, params, {}, /*site_id=*/0);

  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    const ClusterId c = local.clustering.labels[p];
    if (c < 0) continue;
    bool covered = false;
    for (const Representative& rep : model.representatives) {
      if (rep.local_cluster != c) continue;
      if (Euclidean().Distance(synth.data.point(p), rep.center) <=
          rep.eps_range + 1e-9) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << LocalModelTypeName(type) << ": point " << p
                         << " of cluster " << c << " uncovered";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, ModelCoverageTest,
    ::testing::Combine(::testing::Values(LocalModelType::kScor,
                                         LocalModelType::kKMeans),
                       ::testing::Values(10u, 11u, 12u)),
    [](const auto& info) {
      return std::string(LocalModelTypeName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------

TEST(ScorModelTest, EpsRangeIsAtLeastEpsAndBoundedByTwoEps) {
  const SyntheticDataset synth = MakeBlobs(600, 4, 0.1, 1.0, 2.0, 31);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildScorModel(index, local, params, 0);
  for (const Representative& rep : model.representatives) {
    // Def. 7: ε_s = Eps + max dist to a core within Eps, so it lies in
    // [Eps, 2·Eps]. This is why the default Eps_global (max ε_R) is
    // "generally close to 2·Eps_local".
    EXPECT_GE(rep.eps_range, params.eps);
    EXPECT_LE(rep.eps_range, 2.0 * params.eps + 1e-12);
  }
}

TEST(ScorModelTest, IsolatedScorGetsPlainEpsRange) {
  // min_pts = 1: every point is core. Two far-apart singleton clusters;
  // each scor has no other core within Eps, so ε_s = Eps exactly.
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{50.0, 50.0});
  const LinearScanIndex index(data, Euclidean());
  const DbscanParams params{1.0, 1};
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildScorModel(index, local, params, 0);
  ASSERT_EQ(model.representatives.size(), 2u);
  EXPECT_DOUBLE_EQ(model.representatives[0].eps_range, 1.0);
  EXPECT_DOUBLE_EQ(model.representatives[1].eps_range, 1.0);
}

TEST(ScorModelTest, FigureThreeScenario) {
  // Fig. 3a: core points A, B within Eps of each other; if A is visited
  // first it is the specific core point and ε_A = Eps + dist(A, B') for
  // the farthest core B' in its Eps-neighborhood.
  Dataset data(2);
  // A at 0; B at 0.8; C/D close to A make both core; E/F hang off B as
  // border points. The farthest core in N_Eps(A) is B itself.
  data.Add(Point{0.0, 0.0});   // A (id 0, visited first).
  data.Add(Point{0.8, 0.0});   // B (id 1).
  data.Add(Point{0.1, 0.1});   // C.
  data.Add(Point{-0.1, 0.1});  // D.
  data.Add(Point{1.5, 0.0});   // E (border).
  data.Add(Point{1.6, 0.0});   // F (border).
  const DbscanParams params{1.0, 4};
  const LinearScanIndex index(data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  ASSERT_EQ(local.clustering.num_clusters, 1);
  ASSERT_TRUE(local.clustering.is_core[0]);
  ASSERT_TRUE(local.clustering.is_core[1]);
  // B is within Eps of A, so only A is specific.
  ASSERT_EQ(local.scor[0].size(), 1u);
  EXPECT_EQ(local.scor[0][0], 0);
  const LocalModel model = BuildScorModel(index, local, params, 0);
  ASSERT_EQ(model.representatives.size(), 1u);
  // ε_A = Eps + max core distance within N_Eps(A) = 1.0 + dist(A, B).
  EXPECT_DOUBLE_EQ(model.representatives[0].eps_range, 1.0 + 0.8);
}

TEST(KMeansModelTest, SameRepresentativeCountAsScorModel) {
  // Sec. 5.2: "the number of representatives for each cluster is the same
  // as in the previous approach".
  const SyntheticDataset synth = MakeBlobs(700, 4, 0.1, 1.0, 2.0, 33);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel scor_model = BuildScorModel(index, local, params, 0);
  const LocalModel km_model =
      BuildKMeansModel(index, local, params, {}, 0);
  EXPECT_EQ(scor_model.representatives.size(),
            km_model.representatives.size());
}

TEST(KMeansModelTest, CentroidsLieInsideTheClusterRegion) {
  const SyntheticDataset synth = MakeBlobs(500, 3, 0.0, 1.0, 1.5, 35);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildKMeansModel(index, local, params, {}, 0);
  // Every centroid is within the bounding box of its cluster's members.
  for (const Representative& rep : model.representatives) {
    BoundingBox box(2);
    for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
      if (local.clustering.labels[p] == rep.local_cluster) {
        box.Extend(synth.data.point(p));
      }
    }
    EXPECT_TRUE(box.Contains(rep.center));
  }
}

// ---------------------------------------------------------------------------
// Model condensation (extension).

class CondenseTest : public ::testing::TestWithParam<double> {};

TEST_P(CondenseTest, CoverageIsPreservedAndModelShrinks) {
  const SyntheticDataset synth = MakeBlobs(800, 4, 0.1, 1.0, 2.0, 41);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildScorModel(index, local, params, 0);
  const double condense_eps = GetParam();
  const LocalModel condensed =
      CondenseLocalModel(model, condense_eps, Euclidean());
  EXPECT_LE(condensed.representatives.size(), model.representatives.size());
  // Specific core points are pairwise > Eps apart, so only a condensation
  // radius beyond Eps can actually merge anything.
  if (condense_eps > params.eps) {
    EXPECT_LT(condensed.representatives.size(),
              model.representatives.size());
  }
  // Coverage guarantee: every cluster member covered before stays
  // covered, by a representative of the same cluster.
  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    const ClusterId c = local.clustering.labels[p];
    if (c < 0) continue;
    bool covered = false;
    for (const Representative& rep : condensed.representatives) {
      if (rep.local_cluster != c) continue;
      if (Euclidean().Distance(synth.data.point(p), rep.center) <=
          rep.eps_range + 1e-9) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "point " << p << " lost coverage at "
                         << condense_eps;
  }
  // Total weight is conserved.
  std::uint64_t before = 0, after = 0;
  for (const Representative& rep : model.representatives) {
    before += rep.weight;
  }
  for (const Representative& rep : condensed.representatives) {
    after += rep.weight;
  }
  EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(CondenseEps, CondenseTest,
                         ::testing::Values(0.6, 1.2, 2.4, 5.0));

TEST(CondenseTest, ZeroEpsIsIdentity) {
  const SyntheticDataset synth = MakeBlobs(300, 2, 0.0, 1.0, 1.5, 42);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildScorModel(index, local, params, 0);
  const LocalModel same = CondenseLocalModel(model, 0.0, Euclidean());
  EXPECT_EQ(same.representatives.size(), model.representatives.size());
}

TEST(CondenseTest, NeverMergesAcrossLocalClusters) {
  LocalModel model;
  model.dim = 2;
  model.num_local_clusters = 2;
  model.representatives = {
      {{0.0, 0.0}, 1.0, 0, 5},
      {{0.1, 0.0}, 1.0, 1, 5},  // Different cluster, though adjacent.
  };
  const LocalModel condensed =
      CondenseLocalModel(model, 10.0, Euclidean());
  EXPECT_EQ(condensed.representatives.size(), 2u);
}

TEST(LocalModelTest, NoClustersYieldsEmptyModel) {
  Rng rng(36);
  const Dataset data = RandomDataset(30, 2, 0.0, 100.0, &rng);
  const DbscanParams params{0.5, 10};
  const LinearScanIndex index(data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  ASSERT_EQ(local.clustering.num_clusters, 0);
  for (const LocalModelType type :
       {LocalModelType::kScor, LocalModelType::kKMeans}) {
    const LocalModel model =
        BuildLocalModel(type, index, local, params, {}, 3);
    EXPECT_TRUE(model.representatives.empty());
    EXPECT_EQ(model.site_id, 3);
    EXPECT_EQ(model.num_local_clusters, 0);
  }
}

TEST(LocalModelTest, ScorWeightsCountCoveredObjects) {
  // A tight 6-point cluster with one specific core point: its weight is
  // the number of local objects inside its ε-range.
  Dataset data(2);
  for (int i = 0; i < 6; ++i) data.Add(Point{0.1 * i, 0.0});
  const DbscanParams params{1.0, 4};
  const LinearScanIndex index(data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildScorModel(index, local, params, 0);
  ASSERT_EQ(model.representatives.size(), 1u);
  EXPECT_EQ(model.representatives[0].weight, 6u);
}

TEST(KMeansModelTest, WeightsSumToClusterSizes) {
  const SyntheticDataset synth = MakeBlobs(500, 3, 0.1, 1.0, 1.8, 39);
  const DbscanParams params{1.2, 5};
  const LinearScanIndex index(synth.data, Euclidean());
  const LocalClustering local = RunLocalDbscan(index, params);
  const LocalModel model = BuildKMeansModel(index, local, params, {}, 0);
  // REP_kMeans weights are exact partition sizes: per cluster they sum
  // to the cluster cardinality.
  const std::vector<std::size_t> sizes = local.clustering.ClusterSizes();
  std::vector<std::uint64_t> weight_sum(sizes.size(), 0);
  for (const Representative& rep : model.representatives) {
    ASSERT_GE(rep.local_cluster, 0);
    weight_sum[rep.local_cluster] += rep.weight;
  }
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    EXPECT_EQ(weight_sum[c], sizes[c]) << "cluster " << c;
  }
}

TEST(LocalModelTest, RepresentativesAreAFractionOfTheData) {
  // The transmission saving the paper reports (Fig. 10: ~16-17% of the
  // data become representatives).
  const SyntheticDataset synth = MakeTestDatasetA(37);
  const auto index = CreateIndex(IndexType::kGrid, synth.data, Euclidean(),
                                 synth.suggested_params.eps);
  const LocalClustering local =
      RunLocalDbscan(*index, synth.suggested_params);
  const LocalModel model =
      BuildScorModel(*index, local, synth.suggested_params, 0);
  EXPECT_GT(model.representatives.size(), 0u);
  EXPECT_LT(model.representatives.size(), synth.data.size() / 2);
}

}  // namespace
}  // namespace dbdc
