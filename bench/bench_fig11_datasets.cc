// Reproduces Fig. 11 of the DBDC paper: quality Q_DBDC on the three test
// data sets A (random clusters), B (very noisy) and C (3 clusters) for
// both local models under P^I and P^II, at Eps_global = 2*Eps_local with
// 4 sites.
//
// Paper shape: high quality on all three sets; the noisy set B scores
// visibly lower under P^II (matching user intuition), while P^I barely
// discriminates.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;

struct Fig11Row {
  std::string dataset;
  std::size_t n = 0;
  double p1_kmeans = 0.0, p2_kmeans = 0.0;
  double p1_scor = 0.0, p2_scor = 0.0;
};

std::vector<Fig11Row>& Rows() {
  static auto* rows = new std::vector<Fig11Row>();
  return *rows;
}

Fig11Row& RowFor(const std::string& name, std::size_t n) {
  for (Fig11Row& row : Rows()) {
    if (row.dataset == name) return row;
  }
  Rows().push_back(Fig11Row{name, n, 0, 0, 0, 0});
  return Rows().back();
}

SyntheticDataset MakeByIndex(int idx) {
  switch (idx) {
    case 0:
      return MakeTestDatasetA();
    case 1:
      return MakeTestDatasetB();
    default:
      return MakeTestDatasetC();
  }
}

void BM_QualityOnDataset(benchmark::State& state, LocalModelType model) {
  const SyntheticDataset synth = MakeByIndex(static_cast<int>(state.range(0)));
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.model_type = model;
  config.eps_global = 2.0 * synth.suggested_params.eps;
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    const double p1 = QualityP1(result.labels, central.labels,
                                synth.suggested_params.min_pts);
    const double p2 = QualityP2(result.labels, central.labels);
    Fig11Row& row = RowFor(synth.name, synth.data.size());
    if (model == LocalModelType::kKMeans) {
      row.p1_kmeans = p1;
      row.p2_kmeans = p2;
    } else {
      row.p1_scor = p1;
      row.p2_scor = p2;
    }
    state.counters["P1"] = p1;
    state.counters["P2"] = p2;
  }
}

void BM_KMeans(benchmark::State& state) {
  BM_QualityOnDataset(state, LocalModelType::kKMeans);
}
void BM_Scor(benchmark::State& state) {
  BM_QualityOnDataset(state, LocalModelType::kScor);
}

void RegisterAll() {
  for (const int idx : {0, 1, 2}) {
    benchmark::RegisterBenchmark("quality_rep_kmeans", BM_KMeans)
        ->Arg(idx)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("quality_rep_scor", BM_Scor)
        ->Arg(idx)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Fig. 11 — Q_DBDC on test data sets A, B, C (4 sites, Eps_global = "
      "2*Eps_local)");
  table.SetHeader({"data set", "n", "kMeans P^I", "kMeans P^II", "Scor P^I",
                   "Scor P^II"});
  for (const Fig11Row& row : Rows()) {
    table.AddRow({row.dataset, bench::Fmt("%zu", row.n),
                  bench::Fmt("%.0f", 100.0 * row.p1_kmeans),
                  bench::Fmt("%.0f", 100.0 * row.p2_kmeans),
                  bench::Fmt("%.0f", 100.0 * row.p1_scor),
                  bench::Fmt("%.0f", 100.0 * row.p2_scor)});
  }
  table.Print();
  std::printf("Paper shape check: all sets score high; the noisy set B is "
              "the lowest under P^II, and REP_kMeans is slightly ahead of "
              "REP_Scor.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
