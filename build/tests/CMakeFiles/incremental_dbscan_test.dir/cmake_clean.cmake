file(REMOVE_RECURSE
  "CMakeFiles/incremental_dbscan_test.dir/incremental_dbscan_test.cc.o"
  "CMakeFiles/incremental_dbscan_test.dir/incremental_dbscan_test.cc.o.d"
  "incremental_dbscan_test"
  "incremental_dbscan_test.pdb"
  "incremental_dbscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
