#include "core/dbdc.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/timer.h"
#include "distrib/network.h"

namespace dbdc {
namespace {

void AccumulateProtocolCounters(const TransferOutcome& outcome,
                                DbdcResult* result) {
  result->protocol_retries += static_cast<std::uint64_t>(outcome.retries);
  result->frames_dropped += static_cast<std::uint64_t>(outcome.data_drops);
  result->frames_corrupted +=
      static_cast<std::uint64_t>(outcome.data_corruptions);
  result->acks_lost += static_cast<std::uint64_t>(outcome.ack_losses);
}

/// Unwraps the payload of a frame the channel reports as delivered
/// intact. The frame decoded once already (that is what "delivered"
/// means), so failure here is a programming error, not wire corruption.
std::vector<std::uint8_t> DeliveredPayload(const Transport& network,
                                           const TransferOutcome& outcome) {
  DBDC_CHECK(outcome.delivered);
  std::optional<Frame> frame =
      DecodeFrame(network.Message(outcome.delivered_index).payload);
  DBDC_CHECK(frame.has_value() && "delivered frame no longer decodes");
  return std::move(frame->payload);
}

}  // namespace

DbdcResult RunDbdc(const Dataset& data, const Metric& metric,
                   const DbdcConfig& config, Transport* network) {
  DBDC_CHECK(config.num_sites >= 1);
  SimulatedNetwork own_network;
  if (network == nullptr) network = &own_network;

  // Step 0: horizontal distribution. In the real deployment the data is
  // born at the sites; here the partitioner simulates that placement.
  const UniformRandomPartitioner default_partitioner;
  const Partitioner* partitioner = config.partitioner != nullptr
                                       ? config.partitioner
                                       : &default_partitioner;
  Rng rng(config.seed);
  const std::vector<std::vector<PointId>> parts =
      partitioner->Partition(data, config.num_sites, &rng);

  std::vector<Site> sites;
  sites.reserve(parts.size());
  for (int s = 0; s < config.num_sites; ++s) {
    Dataset site_data(data.dim());
    site_data.Reserve(parts[s].size());
    for (const PointId id : parts[s]) site_data.Add(data.point(id));
    sites.emplace_back(s, metric, std::move(site_data), parts[s]);
  }

  // Step 1+2: independent local clustering and local models.
  const SiteConfig site_config{config.local_dbscan, config.model_type,
                               config.kmeans, config.index_type,
                               config.condense_eps, config.num_threads};
  DbdcResult result;
  result.site_sizes.reserve(sites.size());
  if (config.parallel_sites) {
    // Sites are fully independent; one thread each, as in a real
    // deployment where every site is its own machine.
    std::vector<std::thread> workers;
    workers.reserve(sites.size());
    for (Site& site : sites) {
      workers.emplace_back(
          [&site, &site_config] { site.RunLocalPipeline(site_config); });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (Site& site : sites) site.RunLocalPipeline(site_config);
  }
  for (Site& site : sites) {
    result.site_sizes.push_back(site.data().size());
    const double local_seconds =
        site.local_clustering_seconds() + site.model_seconds();
    result.max_local_seconds =
        std::max(result.max_local_seconds, local_seconds);
    result.sum_local_seconds += local_seconds;
  }

  // Step 2b+3: transmission of the local models and the server-side
  // merge. Two regimes:
  //   - protocol disabled (the paper's setting): raw payloads over an
  //     assumed-lossless transport; an undecodable payload aborts.
  //   - protocol enabled: checksummed frames with ack/retry; the server
  //     merges whatever arrived intact by the collection deadline and the
  //     rest of the sites are reported as failed.
  GlobalModelParams global_params;
  global_params.eps_global = config.eps_global;
  global_params.min_pts_global = 2;
  global_params.index_type = config.index_type;
  global_params.min_weight_global = config.min_weight_global;
  global_params.num_threads = config.num_threads;
  Server server(metric, global_params);

  ReliableChannel channel(network, config.protocol);
  if (!config.protocol.enabled) {
    for (Site& site : sites) {
      result.num_representatives += site.local_model().representatives.size();
      network->Send(site.site_id(), kServerEndpoint,
                    site.EncodeLocalModelBytes());
    }
    for (const NetworkMessage* msg : network->Inbox(kServerEndpoint)) {
      const DecodeStatus status = server.AddLocalModelBytes(msg->payload);
      DBDC_CHECK(status == DecodeStatus::kOk &&
                 "local model payload failed to decode");
    }
    result.sites_reporting = config.num_sites;
  } else {
    for (Site& site : sites) {
      const TransferOutcome up = channel.Transfer(
          site.site_id(), kServerEndpoint, site.EncodeLocalModelBytes());
      AccumulateProtocolCounters(up, &result);
      bool accepted =
          up.delivered &&
          up.delivered_seconds <= config.protocol.collection_deadline_sec;
      if (accepted) {
        accepted = server.AddLocalModelBytes(
                       DeliveredPayload(*network, up)) == DecodeStatus::kOk;
      }
      if (accepted) {
        ++result.sites_reporting;
        result.num_representatives +=
            site.local_model().representatives.size();
      } else {
        result.failed_site_ids.push_back(site.site_id());
      }
    }
  }
  result.sites_failed = config.num_sites - result.sites_reporting;

  server.BuildGlobal();
  result.global_seconds = server.global_clustering_seconds();
  result.eps_global_used = server.global_model().eps_global_used;

  // Step 4: broadcast and relabel. The representative index is built once
  // here (over the server's model — byte-identical to every decoded
  // broadcast copy) and shared by all sites' relabel passes. Points of
  // sites the broadcast does not reach keep kNoise.
  const std::vector<std::uint8_t> global_bytes =
      server.EncodeGlobalModelBytes();
  const RelabelContext relabel_context(server.global_model(), metric);
  result.labels.assign(data.size(), kNoise);
  for (Site& site : sites) {
    std::vector<std::uint8_t> received;
    if (!config.protocol.enabled) {
      network->Send(kServerEndpoint, site.site_id(), global_bytes);
      received = global_bytes;
    } else {
      const TransferOutcome down =
          channel.Transfer(kServerEndpoint, site.site_id(), global_bytes);
      AccumulateProtocolCounters(down, &result);
      if (!down.delivered) continue;
      received = DeliveredPayload(*network, down);
    }
    const DecodeStatus status =
        site.ApplyGlobalModelBytes(received, &relabel_context);
    if (!config.protocol.enabled) {
      DBDC_CHECK(status == DecodeStatus::kOk &&
                 "global model payload failed to decode");
    } else if (status != DecodeStatus::kOk) {
      continue;
    }
    ++result.sites_relabeled;
    result.max_relabel_seconds =
        std::max(result.max_relabel_seconds, site.relabel_seconds());
    const std::vector<ClusterId>& labels = site.global_labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      result.labels[site.origin_ids()[i]] = labels[i];
    }
  }

  result.num_global_clusters = server.global_model().num_global_clusters;
  result.bytes_uplink = network->BytesUplink();
  result.bytes_downlink = network->BytesDownlink();
  result.global_model = server.global_model();
  return result;
}

CentralDbscanResult RunCentralDbscan(const Dataset& data, const Metric& metric,
                                     const DbscanParams& params,
                                     IndexType index_type) {
  Timer timer;
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(index_type, data, metric, params.eps);
  CentralDbscanResult result;
  result.clustering = RunDbscan(*index, params);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace dbdc
