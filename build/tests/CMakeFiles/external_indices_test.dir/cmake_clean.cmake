file(REMOVE_RECURSE
  "CMakeFiles/external_indices_test.dir/external_indices_test.cc.o"
  "CMakeFiles/external_indices_test.dir/external_indices_test.cc.o.d"
  "external_indices_test"
  "external_indices_test.pdb"
  "external_indices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_indices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
