# Empty compiler generated dependencies file for dbdc_core.
# This may be replaced when dependencies are built.
