#ifndef DBDC_CORE_SITE_H_
#define DBDC_CORE_SITE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/local_model.h"
#include "core/relabel.h"
#include "index/index_factory.h"

namespace dbdc {

/// Configuration of a site's local pipeline.
struct SiteConfig {
  DbscanParams dbscan;
  LocalModelType model_type = LocalModelType::kScor;
  KMeansParams kmeans;
  IndexType index_type = IndexType::kGrid;
  /// When > 0, the local model is condensed with this radius before
  /// transmission (CondenseLocalModel; smaller uplink, coarser ranges).
  double condense_eps = 0.0;
};

/// A local client site (Sec. 3): owns its horizontal partition of the
/// data, clusters it independently, derives the local model, and — once
/// the server broadcasts the global model — relabels its objects.
///
/// Sites never talk to each other, only to the server, and all
/// communication happens through serialized bytes (see model_codec.h) so
/// the transmission cost is measured faithfully.
class Site {
 public:
  /// `data` is the site's own copy of its partition; `origin_ids[i]` maps
  /// local point i back to the id in the original (conceptual) full
  /// dataset, for evaluation only — the algorithm never uses it.
  Site(int site_id, const Metric& metric, Dataset data,
       std::vector<PointId> origin_ids);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;
  Site(Site&&) = default;

  /// Phase 1+2: local DBSCAN and local model determination. Records the
  /// wall-clock time of each phase.
  void RunLocalPipeline(const SiteConfig& config);

  /// The local model, serialized for transmission to the server.
  std::vector<std::uint8_t> EncodeLocalModelBytes() const;

  /// Phase 4: relabels all local objects against the received global
  /// model (deserialized from `bytes`). Returns false on a corrupt
  /// payload.
  bool ApplyGlobalModelBytes(std::span<const std::uint8_t> bytes);

  /// Phase 4, non-serialized variant (tests).
  void ApplyGlobalModel(const GlobalModel& global);

  int site_id() const { return site_id_; }
  const Dataset& data() const { return data_; }
  const std::vector<PointId>& origin_ids() const { return origin_ids_; }

  /// Valid after RunLocalPipeline().
  const LocalClustering& local_clustering() const { return local_; }
  const LocalModel& local_model() const { return model_; }
  double local_clustering_seconds() const { return cluster_seconds_; }
  double model_seconds() const { return model_seconds_; }

  /// Valid after ApplyGlobalModel*(): global label per local point.
  const std::vector<ClusterId>& global_labels() const {
    return global_labels_;
  }
  double relabel_seconds() const { return relabel_seconds_; }

 private:
  int site_id_;
  const Metric* metric_;
  Dataset data_;
  std::vector<PointId> origin_ids_;
  std::unique_ptr<NeighborIndex> index_;
  LocalClustering local_;
  LocalModel model_;
  std::vector<ClusterId> global_labels_;
  double cluster_seconds_ = 0.0;
  double model_seconds_ = 0.0;
  double relabel_seconds_ = 0.0;
};

}  // namespace dbdc

#endif  // DBDC_CORE_SITE_H_
