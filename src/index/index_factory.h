#ifndef DBDC_INDEX_INDEX_FACTORY_H_
#define DBDC_INDEX_INDEX_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "index/neighbor_index.h"

namespace dbdc {

/// The spatial access methods available to DBSCAN and the DBDC driver.
enum class IndexType {
  kLinearScan,
  kGrid,
  kKdTree,
  kRStarTree,
  /// R*-tree built with Sort-Tile-Recursive bulk loading instead of
  /// repeated insertion (same queries, much faster static construction).
  kRStarTreeBulk,
  kMTree,
  /// Vantage-point tree (metric-only, static, balanced).
  kVpTree,
  /// Random-projection candidate generation with exact re-verification
  /// (see ApproxIndex). Exact at the default window_scale = 1.0.
  kApprox,
};

/// Tuning knobs for IndexType::kApprox (see ApproxIndex for semantics).
/// The defaults are the "default projection budget" the bench quality
/// gate holds to: full recall, 4 projection axes.
struct ApproxIndexOptions {
  /// Number of random-projection axes. More axes prune candidates harder
  /// but cost more cell lookups per query. Must be >= 1.
  int num_projections = 4;
  /// Projected cell side as a multiple of eps_hint (times the metric
  /// inflation factor). Must be positive and finite. Raising it far above
  /// the dataset spread degenerates the index to one cell per axis — the
  /// exhaustive configuration the equivalence tests use.
  double cell_width_factor = 2.0;
  /// Scales the projected query window. 1.0 (default) guarantees recall
  /// 1.0 by Cauchy–Schwarz; below 1.0 the index becomes genuinely
  /// approximate. Must be positive and finite.
  double window_scale = 1.0;
  /// Seed for the projection directions; candidate sets are a pure
  /// function of (seed, dim, insertion order).
  std::uint64_t seed = 0x5eedULL;
};

/// Builds an index of the requested type over `data`.
///
/// `eps_hint` sizes the grid and projected-grid cells (ignored by the
/// other types); it should be the DBSCAN ε the index will mostly be
/// queried with and must be positive when `type` is kGrid or kApprox.
/// `approx` is consulted only by kApprox.
std::unique_ptr<NeighborIndex> CreateIndex(
    IndexType type, const Dataset& data, const Metric& metric,
    double eps_hint, const ApproxIndexOptions& approx = {});

/// Parses "linear" / "grid" / "kdtree" / "rstar" / "rstar_bulk" /
/// "mtree" / "vptree" / "approx"; returns false for unknown names.
bool ParseIndexType(std::string_view name, IndexType* out);

/// The inverse of ParseIndexType.
std::string_view IndexTypeName(IndexType type);

}  // namespace dbdc

#endif  // DBDC_INDEX_INDEX_FACTORY_H_
