#!/usr/bin/env python3
"""DBDC invariant linter (DESIGN.md §10).

Enforces the project-specific determinism and robustness invariants that
generic tooling cannot know about, over every library source under src/:

  no-wall-clock        Wall-clock reads (steady_clock / system_clock /
                       high_resolution_clock) are confined to
                       common/timer.h and the tracer; everything else in
                       the pipeline must run on the virtual clock so
                       parallel / streaming results stay bit-identical.
  no-ambient-rng       rand() / srand() / std::random_device are ambient,
                       unseeded randomness; all randomized components take
                       an explicit seeded dbdc::Rng (common/rng.h).
  unchecked-status     A DecodeStatus-returning call whose result is
                       discarded drops a wire error on the floor. (The
                       enum is also [[nodiscard]]; this rule catches
                       builds or call shapes the warning misses.)
  no-naked-new         Naked new/delete outside the audited arena-style
                       index structures; ownership elsewhere is RAII.
  no-console-io        printf/fprintf/puts/std::cout/std::cerr in library
                       code; the library reports through return values,
                       observability hooks, or the check.h abort path.
  assert-on-wire       DBDC_DCHECK on codec/wire paths: checks guarding
                       decode/framing logic must be DBDC_ASSERT so they
                       stay active in Release builds too.
  no-reinterpret-cast  reinterpret_cast outside audited, documented sites.
  no-handrolled-distance
                       Per-point Euclidean scoring loops outside the
                       audited kernels; every candidate run must route
                       through simd::Filter*/BatchedSquaredEuclidean so
                       the SIMD/scalar bit-identity argument (DESIGN.md
                       §11) covers it.

The linter is driven off a compile_commands.json when one is available
(for the translation-unit list) and falls back to walking src/ otherwise.
Analysis itself is token-level: comments and string/char literals are
stripped (line structure preserved), then per-rule regexes run over the
cleaned text. If the libclang Python bindings are importable, the
unchecked-status rule is upgraded to an AST pass; the container image
ships without them, so the token path is the one the fixture self-test
pins down.

Suppressions, most-local first:
  1. An inline `// dbdc-lint: allow(<rule-id>)` comment on the offending
     line or the line directly above it.
  2. A per-file allowlist entry in ALLOWLIST below, with a justification.

Self-test: `dbdc_lint.py --self-test` lints tests/lint_fixtures/, where
every rule has a `<rule>_bad.*` fixture that must fire exactly that rule
and a `<rule>_good.*` fixture that must stay silent — the gate gates
itself.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import glob
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

# Each rule: id, message, regex over comment/string-stripped source,
# `scope` (predicate on the repo-relative path; default: everything under
# src/), and a per-file allowlist {path: justification}.


def _wire_path(path):
    """Codec / framing / model-exchange surfaces (the wire paths)."""
    wire = (
        "src/core/model_codec",
        "src/core/server",
        "src/core/site",
        "src/core/streaming_site",
        "src/distrib/protocol",
        "src/distrib/socket_transport",
        "src/serve/wire",
    )
    return path.startswith(wire)


RULES = [
    {
        "id": "no-wall-clock",
        "pattern": re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"
        ),
        "message": "wall-clock read outside the timer/tracer "
                   "(breaks virtual-clock determinism)",
        "allow": {
            "src/common/timer.h":
                "the one wall-clock stopwatch the harness times with",
            "src/obs/trace.h":
                "tracer epoch member type (wall-clock span track)",
            "src/obs/trace.cc":
                "the tracer's wall-clock track is wall time by design",
        },
    },
    {
        "id": "no-ambient-rng",
        "pattern": re.compile(
            r"(?:\brand\s*\(|\bsrand\s*\(|\brandom_device\b)"
        ),
        "message": "ambient randomness; take an explicit seeded dbdc::Rng",
        "allow": {
            "src/common/rng.h":
                "the seeded-RNG abstraction every component must use",
        },
    },
    {
        "id": "unchecked-status",
        # A status-returning call that *starts* a statement (directly
        # preceded, modulo whitespace, by ';', '{' or '}') is a discarded
        # result. Assignments, comparisons, returns and (void) casts all
        # put another token in front and do not match; neither do
        # declarations/definitions, whose leading return type breaks the
        # qualified-name prefix.
        "pattern": re.compile(
            r"[;{}]\s*"
            r"(?:[A-Za-z_]\w*(?:\.|->|::))*"
            r"(?:DecodeLocalModel|DecodeGlobalModel|DecodeFrame"
            r"|AddLocalModelBytes|ApplyGlobalModelBytes"
            r"|UpsertLocalModelBytes)\s*\("
        ),
        "message": "DecodeStatus/decode result discarded; a wire error "
                   "would vanish silently",
        "allow": {},
    },
    {
        "id": "no-naked-new",
        "pattern": re.compile(r"\bnew\b|\bdelete\b"),
        # `= delete` (deleted special members) is not an ownership
        # operation; everything else is.
        "filter": lambda cleaned, m: not (
            m.group(0) == "delete"
            and cleaned[:m.start()].rstrip()[-1:] == "="
        ),
        "message": "naked new/delete; use RAII ownership "
                   "(std::unique_ptr / containers)",
        "allow": {
            "src/index/m_tree.cc":
                "audited arena-style node ownership with explicit "
                "recursive FreeSubtree",
            "src/index/rstar_tree.cc":
                "audited arena-style node ownership with explicit "
                "recursive free",
            "src/common/distance.cc":
                "intentionally leaked function-local metric singletons "
                "(identity-compared; must never be destroyed)",
        },
    },
    {
        "id": "no-console-io",
        "pattern": re.compile(
            r"(?:(?<!\w)(?:printf|fprintf|vfprintf|puts|putchar)\s*\("
            r"|std::(?:cout|cerr|clog)\b)"
        ),
        "message": "console I/O in library code; report through return "
                   "values or the obs layer",
        "allow": {
            "src/common/check.h":
                "the contract-violation abort path must print before "
                "std::abort",
        },
    },
    {
        "id": "assert-on-wire",
        "pattern": re.compile(r"\bDBDC_DCHECK\b(?!_IS_ON)"),
        "message": "DBDC_DCHECK on a codec/wire path; wire-facing checks "
                   "must be DBDC_ASSERT (always on)",
        "scope": _wire_path,
        "allow": {},
    },
    {
        "id": "no-reinterpret-cast",
        "pattern": re.compile(r"\breinterpret_cast\b"),
        "message": "reinterpret_cast outside audited sites; prefer "
                   "std::memcpy or a documented inline allow",
        "allow": {},
    },
    {
        "id": "no-handrolled-distance",
        "pattern": re.compile(r"\bSquaredEuclideanDistance\s*\("),
        "message": "hand-rolled per-point Euclidean scoring; route the "
                   "candidate run through the batched kernels "
                   "(simd::FilterRows/FilterIds/BatchedSquaredEuclidean, "
                   "common/simd_kernels.h) so the tier bit-identity "
                   "contract covers it",
        "allow": {
            "src/common/distance.h":
                "the scalar reference kernel the contract is defined "
                "against",
            "src/common/simd_kernels.cc":
                "the kernels' scalar tier and vector-tail path call the "
                "reference kernel by design",
        },
    },
]

ALLOW_COMMENT = re.compile(r"dbdc-lint:\s*allow\(([^)]*)\)")


# --------------------------------------------------------------------------
# Source preparation
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving every
    newline so match offsets map back to the original line numbers."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW_STRING = range(6)
    state = NORMAL
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string literal?  R"delim( ... )delim"
                m = re.match(r'R"([^()\\\s]{0,16})\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    state = RAW_STRING
                    out.append('"')
                    i += 1 + len(m.group(1)) + 1
                    out.append(" " * (len(m.group(1)) + 1))
                else:
                    state = STRING
                    out.append('"')
                    i += 1
            elif c == "'":
                state = CHAR
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == RAW_STRING:
            if text.startswith(raw_terminator, i):
                out.append(" " * (len(raw_terminator) - 1) + '"')
                i += len(raw_terminator)
                state = NORMAL
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def inline_allows(original_text):
    """Maps 1-based line number -> set of rule ids allowed on that line
    (an allow-comment also covers the line directly below it)."""
    allows = {}
    for lineno, line in enumerate(original_text.splitlines(), start=1):
        m = ALLOW_COMMENT.search(line)
        if not m:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        allows.setdefault(lineno, set()).update(ids)
        allows.setdefault(lineno + 1, set()).update(ids)
    return allows


# --------------------------------------------------------------------------
# Lint driver
# --------------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, rule_id, message):
        self.path = path
        self.line = line
        self.rule_id = rule_id
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


def lint_text(text, rel_path):
    """Lints one file's contents as repo-relative path `rel_path`."""
    cleaned = strip_comments_and_strings(text)
    allows = inline_allows(text)
    findings = []
    for rule in RULES:
        scope = rule.get("scope", lambda p: True)
        if not rel_path.startswith("src/") or not scope(rel_path):
            continue
        if rel_path in rule["allow"]:
            continue
        for m in rule["pattern"].finditer(cleaned):
            if not rule.get("filter", lambda c, mm: True)(cleaned, m):
                continue
            # Line of the first non-separator character of the match.
            matched = m.group(0)
            offset = m.start() + (len(matched) - len(matched.lstrip(";{} \t\n")))
            line = cleaned.count("\n", 0, offset) + 1
            if rule["id"] in allows.get(line, set()):
                continue
            findings.append(Finding(rel_path, line, rule["id"],
                                    rule["message"]))
    return findings


def try_libclang_status_check(path, compile_args):
    """AST-accurate unchecked-status pass; returns a list of (line,) hits
    or None when libclang is unavailable/unusable (token fallback runs
    instead)."""
    try:
        from clang import cindex  # noqa: PLC0415
    except Exception:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=compile_args)
        status_fns = {
            "DecodeLocalModel", "DecodeGlobalModel", "DecodeFrame",
            "AddLocalModelBytes", "ApplyGlobalModelBytes",
            "UpsertLocalModelBytes",
        }
        hits = []

        def walk(node, parent_kind):
            if (node.kind == cindex.CursorKind.CALL_EXPR
                    and node.spelling in status_fns
                    and parent_kind == cindex.CursorKind.COMPOUND_STMT):
                hits.append(node.location.line)
            for child in node.get_children():
                walk(child, node.kind)

        walk(tu.cursor, None)
        return hits
    except Exception:
        return None


def collect_files(root, build_dir):
    """Translation units from compile_commands.json (when present) plus
    all headers/sources under src/."""
    files = set()
    db = os.path.join(build_dir, "compile_commands.json") if build_dir else None
    if db and os.path.isfile(db):
        try:
            with open(db, encoding="utf-8") as fh:
                for entry in json.load(fh):
                    path = os.path.normpath(
                        os.path.join(entry.get("directory", ""),
                                     entry["file"]))
                    rel = os.path.relpath(path, root)
                    if rel.startswith("src" + os.sep):
                        files.add(rel)
        except (OSError, ValueError, KeyError) as err:
            print(f"dbdc_lint: warning: unreadable {db}: {err}",
                  file=sys.stderr)
    for pattern in ("src/**/*.cc", "src/**/*.h"):
        for path in glob.glob(os.path.join(root, pattern), recursive=True):
            files.add(os.path.relpath(path, root))
    return sorted(f.replace(os.sep, "/") for f in files)


def lint_tree(root, build_dir):
    findings = []
    files = collect_files(root, build_dir)
    if not files:
        print(f"dbdc_lint: no sources found under {root}/src",
              file=sys.stderr)
        return findings, 0
    for rel in files:
        try:
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            print(f"dbdc_lint: warning: cannot read {rel}: {err}",
                  file=sys.stderr)
            continue
        file_findings = lint_text(text, rel)
        # Optional AST upgrade: when libclang is importable, it may find
        # discarded-status call shapes the token pass cannot see. It only
        # ever *adds* findings, so environments without the bindings (the
        # pinned container) and CI agree on everything the token pass
        # reports.
        if rel.endswith(".cc"):
            ast_lines = try_libclang_status_check(
                os.path.join(root, rel),
                ["-std=c++20", "-I" + os.path.join(root, "src")])
            if ast_lines:
                allows = inline_allows(text)
                token_lines = {f.line for f in file_findings
                               if f.rule_id == "unchecked-status"}
                for line in sorted(set(ast_lines) - token_lines):
                    if "unchecked-status" in allows.get(line, set()):
                        continue
                    file_findings.append(Finding(
                        rel, line, "unchecked-status",
                        "DecodeStatus/decode result discarded "
                        "(libclang AST pass)"))
        findings.extend(file_findings)
    return findings, len(files)


# --------------------------------------------------------------------------
# Fixture self-test
# --------------------------------------------------------------------------

# Fixtures are linted under a virtual src/ path so scoped rules apply;
# assert-on-wire fixtures pretend to live on a wire path.
FIXTURE_VIRTUAL_DIR = {
    "assert-on-wire": "src/core/model_codec_fixture/",
}
DEFAULT_VIRTUAL_DIR = "src/fixture/"


def self_test(fixtures_dir):
    ok = True
    fixtures = sorted(glob.glob(os.path.join(fixtures_dir, "*.cc")))
    if not fixtures:
        print(f"dbdc_lint: no fixtures in {fixtures_dir}", file=sys.stderr)
        return False
    rule_ids = {rule["id"] for rule in RULES}
    covered_bad = set()
    covered_good = set()
    for path in fixtures:
        name = os.path.basename(path)
        m = re.match(r"(.+)_(bad|good)\.cc$", name)
        if not m:
            print(f"SKIP  {name} (not <rule>_bad.cc / <rule>_good.cc)")
            continue
        rule_id, kind = m.group(1).replace("_", "-"), m.group(2)
        if rule_id not in rule_ids:
            print(f"FAIL  {name}: unknown rule id '{rule_id}'")
            ok = False
            continue
        virtual = FIXTURE_VIRTUAL_DIR.get(rule_id, DEFAULT_VIRTUAL_DIR) + name
        with open(path, encoding="utf-8") as fh:
            findings = lint_text(fh.read(), virtual)
        fired = {f.rule_id for f in findings}
        if kind == "bad":
            covered_bad.add(rule_id)
            if fired == {rule_id}:
                print(f"PASS  {name}: fired [{rule_id}] "
                      f"x{len(findings)}")
            else:
                print(f"FAIL  {name}: expected exactly {{{rule_id}}}, "
                      f"got {sorted(fired) or '{}'}")
                ok = False
        else:
            covered_good.add(rule_id)
            if not findings:
                print(f"PASS  {name}: silent")
            else:
                print(f"FAIL  {name}: expected no findings, got:")
                for f in findings:
                    print(f"      {f}")
                ok = False
    for rule_id in sorted(rule_ids - covered_bad):
        print(f"FAIL  rule '{rule_id}' has no bad fixture")
        ok = False
    for rule_id in sorted(rule_ids - covered_good):
        print(f"FAIL  rule '{rule_id}' has no good fixture")
        ok = False
    return ok


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--build-dir", default=None,
                        help="build tree with compile_commands.json "
                             "(optional; adds TU discovery)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded-violation fixture suite "
                             "instead of the tree")
    parser.add_argument("--fixtures", default=None,
                        help="fixtures dir for --self-test "
                             "(default: tests/lint_fixtures)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule in RULES:
            print(f"{rule['id']:20s} {rule['message']}")
            for path, why in rule["allow"].items():
                print(f"{'':22s}allow {path}: {why}")
        return 0

    if args.self_test:
        fixtures = args.fixtures or os.path.join(root, "tests",
                                                 "lint_fixtures")
        passed = self_test(fixtures)
        print("dbdc_lint self-test:", "PASS" if passed else "FAIL")
        return 0 if passed else 1

    build_dir = args.build_dir
    if build_dir is None:
        for candidate in ("build-tidy", "build"):
            if os.path.isfile(os.path.join(root, candidate,
                                           "compile_commands.json")):
                build_dir = os.path.join(root, candidate)
                break
    findings, num_files = lint_tree(root, build_dir)
    for finding in findings:
        print(finding)
    db_note = f", database: {build_dir}" if build_dir else ""
    print(f"dbdc_lint: {num_files} files, {len(findings)} finding(s)"
          f"{db_note}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
