#ifndef DBDC_INDEX_APPROX_INDEX_H_
#define DBDC_INDEX_APPROX_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/simd_kernels.h"
#include "index/index_factory.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// Approximate-neighbor index: seeded random-projection candidate
/// generation with exact re-verification.
///
/// Following the sDBSCAN idea (random projections as a cheap density
/// filter), every point is scored against `num_projections` seeded
/// Gaussian unit directions and hashed into a cell of the projected grid
/// (side `cell_width_factor * eps_hint` per projection axis). An ε-query
/// gathers the cells overlapping the projected window
/// [s(q) - t, s(q) + t] per axis and re-verifies every gathered candidate
/// EXACTLY — through the batched SIMD squared-L2 kernels for the
/// Euclidean metric, through virtual Metric::Distance otherwise — so a
/// reported neighbor is never a false positive and core-point decisions
/// stay sound. Accepted ids are sorted (and deduplicated) per query, so
/// at full recall the output is bit-identical to LinearScanIndex.
///
/// Soundness of the window: by Cauchy–Schwarz |<x-q, v>| <= ||x-q||_2 for
/// a unit direction v, and ||.||_2 <= inflation * d_metric with inflation
/// 1 for Euclidean and Manhattan and sqrt(dim) for Chebyshev. With the
/// default `window_scale = 1.0` the window t = window_scale * inflation *
/// eps therefore COVERS every true ε-neighbor: recall is 1.0 and the
/// index is exact (only the candidate set, and hence the running time, is
/// probabilistic in the seed). `window_scale < 1` trades recall for
/// speed; recall then degrades gracefully because only neighbors whose
/// projection lands near the window edge on some axis can be missed.
/// Only the three built-in Lp metrics are supported.
///
/// Determinism: directions depend only on (seed, dim); cell contents only
/// on insertion order; accepted results are sorted — so candidate sets
/// and query answers are reproducible across runs, thread counts, and
/// SIMD tiers.
///
/// When a query's cell window spans more cells than are occupied (tiny
/// cells or huge eps), the scan falls back to walking the occupied-cell
/// table and testing each cell's stored coordinates against the window,
/// bounding every query at O(occupied cells + candidates).
class ApproxIndex final : public NeighborIndex {
 public:
  /// `eps_hint` must be positive: it sizes the projected cells and seeds
  /// the k-NN search radius. Indexes every point of `data`
  /// (index_all=false starts empty).
  ApproxIndex(const Dataset& data, const Metric& metric, double eps_hint,
              const ApproxIndexOptions& options = {}, bool index_all = true);

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  /// Batched override: reuses one set of projection/cell scratch vectors
  /// across the block and flushes candidate accounting to the registry
  /// once, instead of per query.
  void BatchRangeQuery(std::span<const PointId> queries, double eps,
                       std::vector<PointId>* out_ids,
                       std::vector<std::size_t>* out_counts) const override;
  /// Expanding-radius search. Exact (and tie-pinned to (distance, id)
  /// ascending) when window_scale = 1.0; approximate below that.
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return count_; }
  bool SupportsDynamicUpdates() const override { return true; }
  void Insert(PointId id) override;
  void Erase(PointId id) override;
  std::string_view name() const override { return "approx"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

  const ApproxIndexOptions& options() const { return options_; }
  /// Projected-grid cell side (cell_width_factor * eps_hint * inflation).
  double cell_width() const { return cell_width_; }

 private:
  using CellKey = std::uint64_t;
  struct Cell {
    /// Projected-grid coordinates, kept for the occupied-cell fallback
    /// scan. A 64-bit hash collision between distinct coordinate tuples
    /// would merge two cells (the stored coords are the first inserter's);
    /// exact re-verification keeps answers correct regardless, the
    /// fallback scan could only over- or under-scan that one cell.
    std::vector<std::int64_t> coords;
    std::vector<PointId> ids;
  };

  /// Projection scores of p onto the `num_projections` unit directions.
  void Scores(std::span<const double> p, std::vector<double>* s) const;
  void CellCoords(const std::vector<double>& s,
                  std::vector<std::int64_t>* c) const;
  CellKey HashCoords(const std::vector<std::int64_t>& c) const;

  /// Verifies one cell's candidates exactly, appending accepted ids.
  void VerifyCell(std::span<const double> q, double eps, double eps_sq,
                  const std::vector<PointId>& ids, std::uint64_t* examined,
                  simd::KernelStats* kstats, std::vector<PointId>* out) const;

  /// One range query: gather candidate cells, verify exactly, then sort +
  /// dedup the accepted slice [first_out, out->size()). Scratch vectors
  /// are caller-provided so batched queries reuse allocations; candidate
  /// and kernel accounting accumulate for a single registry flush.
  void ScanWindow(std::span<const double> q, double eps,
                  std::vector<double>* s, std::vector<std::int64_t>* lo,
                  std::vector<std::int64_t>* hi, std::vector<std::int64_t>* cur,
                  std::uint64_t* examined, std::uint64_t* accepted,
                  simd::KernelStats* kstats, std::vector<PointId>* out) const;

  const Dataset* data_;
  const Metric* metric_;
  ApproxIndexOptions options_;
  /// Detected at construction: verification then filters candidates by
  /// squared distance against eps² via the SIMD kernels.
  bool euclidean_;
  /// Upper bound of ||.||_2 / d_metric (1 for L1/L2, sqrt(dim) for L∞).
  double inflation_;
  double eps_hint_;
  double cell_width_;
  /// Seeded Gaussian unit directions, row-major
  /// [num_projections x dim].
  std::vector<double> directions_;
  std::unordered_map<CellKey, Cell> cells_;
  std::size_t count_ = 0;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_APPROX_INDEX_H_
