// Clean variant: formatting into buffers/strings (snprintf, vsnprintf)
// is fine — only stdout/stderr writes are console I/O.
#include <cstdio>
#include <string>

namespace dbdc {

std::string GoodReport(int clusters) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "clusters: %d", clusters);
  return buffer;
}

}  // namespace dbdc
