#include "core/local_model.h"

#include <algorithm>
#include <utility>

namespace dbdc {

std::string_view LocalModelTypeName(LocalModelType type) {
  switch (type) {
    case LocalModelType::kScor:
      return "REP_Scor";
    case LocalModelType::kKMeans:
      return "REP_kMeans";
  }
  return "unknown";
}

void SpecificCorePointCollector::OnClusterStarted(ClusterId cluster) {
  DBDC_CHECK(cluster == static_cast<ClusterId>(scor_.size()));
  scor_.emplace_back();
}

void SpecificCorePointCollector::OnCorePoint(PointId id, ClusterId cluster) {
  DBDC_CHECK(cluster >= 0 &&
             static_cast<std::size_t>(cluster) < scor_.size());
  const auto p = data_->point(id);
  for (const PointId s : scor_[cluster]) {
    // Condition 2 of Def. 6: specific core points are pairwise more than
    // Eps apart.
    if (metric_->Distance(p, data_->point(s)) <= eps_) return;
  }
  scor_[cluster].push_back(id);
}

LocalClustering RunLocalDbscan(const NeighborIndex& index,
                               const DbscanParams& params) {
  SpecificCorePointCollector collector(index.data(), index.metric(),
                                       params.eps);
  LocalClustering local;
  local.clustering = RunDbscan(index, params, &collector);
  local.scor = collector.per_cluster();
  return local;
}

LocalModel BuildScorModel(const NeighborIndex& index,
                          const LocalClustering& local,
                          const DbscanParams& params, int site_id) {
  const Dataset& data = index.data();
  const Metric& metric = index.metric();
  LocalModel model;
  model.site_id = site_id;
  model.dim = data.dim();
  model.num_local_clusters = local.clustering.num_clusters;

  std::vector<PointId> neighbors;
  for (ClusterId c = 0; c < local.clustering.num_clusters; ++c) {
    for (const PointId s : local.scor[c]) {
      // Def. 7: ε_s = Eps + max distance to a core point within Eps of s.
      index.RangeQuery(s, params.eps, &neighbors);
      double max_core_dist = 0.0;
      const auto sp = data.point(s);
      for (const PointId q : neighbors) {
        if (!local.clustering.is_core[q]) continue;
        max_core_dist =
            std::max(max_core_dist, metric.Distance(sp, data.point(q)));
      }
      Representative rep;
      rep.center.assign(sp.begin(), sp.end());
      rep.eps_range = params.eps + max_core_dist;
      rep.local_cluster = c;
      // Weight: how many local objects fall into the represented area.
      index.RangeQuery(s, rep.eps_range, &neighbors);
      rep.weight = static_cast<std::uint32_t>(neighbors.size());
      model.representatives.push_back(std::move(rep));
    }
  }
  return model;
}

LocalModel BuildKMeansModel(const NeighborIndex& index,
                            const LocalClustering& local,
                            const DbscanParams& /*params*/,
                            const KMeansParams& kmeans_params, int site_id) {
  const Dataset& data = index.data();
  const Metric& metric = index.metric();
  LocalModel model;
  model.site_id = site_id;
  model.dim = data.dim();
  model.num_local_clusters = local.clustering.num_clusters;

  // Cluster member lists.
  std::vector<std::vector<PointId>> members(local.clustering.num_clusters);
  for (PointId p = 0; p < static_cast<PointId>(data.size()); ++p) {
    const ClusterId c = local.clustering.labels[p];
    if (c >= 0) members[c].push_back(p);
  }

  for (ClusterId c = 0; c < local.clustering.num_clusters; ++c) {
    const std::vector<PointId>& scor = local.scor[c];
    if (scor.empty() || members[c].empty()) continue;
    std::vector<Point> init;
    init.reserve(scor.size());
    for (const PointId s : scor) {
      const auto sp = data.point(s);
      init.emplace_back(sp.begin(), sp.end());
    }
    const KMeansResult km =
        RunKMeans(data, members[c], init, kmeans_params);
    // ε_{c_j} = max distance of the objects assigned to centroid j.
    std::vector<double> eps_range(km.centroids.size(), 0.0);
    std::vector<std::size_t> counts(km.centroids.size(), 0);
    for (std::size_t i = 0; i < members[c].size(); ++i) {
      const int j = km.assignment[i];
      eps_range[j] = std::max(
          eps_range[j],
          metric.Distance(data.point(members[c][i]), km.centroids[j]));
      ++counts[j];
    }
    for (std::size_t j = 0; j < km.centroids.size(); ++j) {
      if (counts[j] == 0) continue;  // Unreachable: |Scor_C| <= |C|.
      Representative rep;
      rep.center = km.centroids[j];
      rep.eps_range = eps_range[j];
      rep.local_cluster = c;
      rep.weight = static_cast<std::uint32_t>(counts[j]);
      model.representatives.push_back(std::move(rep));
    }
  }
  return model;
}

LocalModel CondenseLocalModel(const LocalModel& model, double condense_eps,
                              const Metric& metric) {
  if (condense_eps <= 0.0) return model;
  LocalModel condensed;
  condensed.site_id = model.site_id;
  condensed.dim = model.dim;
  condensed.num_local_clusters = model.num_local_clusters;

  // Heaviest representatives survive; order is deterministic.
  std::vector<std::size_t> order(model.representatives.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Representative& ra = model.representatives[a];
    const Representative& rb = model.representatives[b];
    if (ra.weight != rb.weight) return ra.weight > rb.weight;
    return a < b;
  });

  for (const std::size_t i : order) {
    const Representative& rep = model.representatives[i];
    // Find the nearest survivor of the same local cluster within
    // condense_eps.
    Representative* nearest = nullptr;
    double nearest_dist = condense_eps;
    for (Representative& survivor : condensed.representatives) {
      if (survivor.local_cluster != rep.local_cluster) continue;
      const double d = metric.Distance(rep.center, survivor.center);
      if (d <= nearest_dist) {
        nearest_dist = d;
        nearest = &survivor;
      }
    }
    if (nearest == nullptr) {
      condensed.representatives.push_back(rep);
    } else {
      // Grow the survivor's range so it still covers everything the
      // merged representative covered (triangle inequality).
      nearest->eps_range =
          std::max(nearest->eps_range, nearest_dist + rep.eps_range);
      nearest->weight += rep.weight;
    }
  }
  return condensed;
}

LocalModel BuildLocalModel(LocalModelType type, const NeighborIndex& index,
                           const LocalClustering& local,
                           const DbscanParams& params,
                           const KMeansParams& kmeans_params, int site_id) {
  switch (type) {
    case LocalModelType::kScor:
      return BuildScorModel(index, local, params, site_id);
    case LocalModelType::kKMeans:
      return BuildKMeansModel(index, local, params, kmeans_params, site_id);
  }
  DBDC_CHECK(false && "unknown local model type");
  return LocalModel{};
}

LocalModel ScorModelStrategy::Build(const NeighborIndex& index,
                                    const LocalClustering& local,
                                    const DbscanParams& params,
                                    const KMeansParams& /*kmeans*/,
                                    int site_id) const {
  return BuildScorModel(index, local, params, site_id);
}

LocalModel KMeansModelStrategy::Build(const NeighborIndex& index,
                                      const LocalClustering& local,
                                      const DbscanParams& params,
                                      const KMeansParams& kmeans,
                                      int site_id) const {
  return BuildKMeansModel(index, local, params, kmeans, site_id);
}

CondensedModelStrategy::CondensedModelStrategy(
    std::unique_ptr<LocalModelStrategy> inner, double condense_eps,
    const Metric& metric)
    : inner_(std::move(inner)),
      condense_eps_(condense_eps),
      metric_(&metric) {
  DBDC_CHECK(inner_ != nullptr);
  DBDC_CHECK(condense_eps_ > 0.0);
}

LocalModel CondensedModelStrategy::Build(const NeighborIndex& index,
                                         const LocalClustering& local,
                                         const DbscanParams& params,
                                         const KMeansParams& kmeans,
                                         int site_id) const {
  return CondenseLocalModel(
      inner_->Build(index, local, params, kmeans, site_id), condense_eps_,
      *metric_);
}

std::unique_ptr<LocalModelStrategy> MakeLocalModelStrategy(
    LocalModelType type, double condense_eps, const Metric& metric) {
  std::unique_ptr<LocalModelStrategy> base;
  switch (type) {
    case LocalModelType::kScor:
      base = std::make_unique<ScorModelStrategy>();
      break;
    case LocalModelType::kKMeans:
      base = std::make_unique<KMeansModelStrategy>();
      break;
  }
  DBDC_CHECK(base != nullptr && "unknown local model type");
  if (condense_eps > 0.0) {
    base = std::make_unique<CondensedModelStrategy>(std::move(base),
                                                    condense_eps, metric);
  }
  return base;
}

}  // namespace dbdc
