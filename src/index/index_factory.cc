#include "index/index_factory.h"

#include "index/approx_index.h"
#include "index/grid_index.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/m_tree.h"
#include "index/rstar_tree.h"
#include "index/vp_tree.h"

namespace dbdc {

std::unique_ptr<NeighborIndex> CreateIndex(IndexType type, const Dataset& data,
                                           const Metric& metric,
                                           double eps_hint,
                                           const ApproxIndexOptions& approx) {
  switch (type) {
    case IndexType::kLinearScan:
      return std::make_unique<LinearScanIndex>(data, metric);
    case IndexType::kGrid:
      return std::make_unique<GridIndex>(data, metric, eps_hint);
    case IndexType::kKdTree:
      return std::make_unique<KdTreeIndex>(data, metric);
    case IndexType::kRStarTree:
      return std::make_unique<RStarTree>(data, metric);
    case IndexType::kRStarTreeBulk:
      return std::make_unique<RStarTree>(
          data, metric, /*index_all=*/true,
          RStarTree::Construction::kBulkLoadStr);
    case IndexType::kMTree:
      return std::make_unique<MTree>(data, metric);
    case IndexType::kVpTree:
      return std::make_unique<VpTree>(data, metric);
    case IndexType::kApprox:
      return std::make_unique<ApproxIndex>(data, metric, eps_hint, approx);
  }
  DBDC_CHECK(false && "unknown index type");
  return nullptr;
}

bool ParseIndexType(std::string_view name, IndexType* out) {
  if (name == "linear") {
    *out = IndexType::kLinearScan;
  } else if (name == "grid") {
    *out = IndexType::kGrid;
  } else if (name == "kdtree") {
    *out = IndexType::kKdTree;
  } else if (name == "rstar") {
    *out = IndexType::kRStarTree;
  } else if (name == "rstar_bulk") {
    *out = IndexType::kRStarTreeBulk;
  } else if (name == "mtree") {
    *out = IndexType::kMTree;
  } else if (name == "vptree") {
    *out = IndexType::kVpTree;
  } else if (name == "approx") {
    *out = IndexType::kApprox;
  } else {
    return false;
  }
  return true;
}

std::string_view IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kLinearScan:
      return "linear";
    case IndexType::kGrid:
      return "grid";
    case IndexType::kKdTree:
      return "kdtree";
    case IndexType::kRStarTree:
      return "rstar";
    case IndexType::kRStarTreeBulk:
      return "rstar_bulk";
    case IndexType::kMTree:
      return "mtree";
    case IndexType::kVpTree:
      return "vptree";
    case IndexType::kApprox:
      return "approx";
  }
  return "unknown";
}

}  // namespace dbdc
