# Empty compiler generated dependencies file for param_estimation_test.
# This may be replaced when dependencies are built.
