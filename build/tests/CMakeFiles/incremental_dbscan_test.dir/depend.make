# Empty dependencies file for incremental_dbscan_test.
# This may be replaced when dependencies are built.
