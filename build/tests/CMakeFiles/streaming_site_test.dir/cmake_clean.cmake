file(REMOVE_RECURSE
  "CMakeFiles/streaming_site_test.dir/streaming_site_test.cc.o"
  "CMakeFiles/streaming_site_test.dir/streaming_site_test.cc.o.d"
  "streaming_site_test"
  "streaming_site_test.pdb"
  "streaming_site_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
