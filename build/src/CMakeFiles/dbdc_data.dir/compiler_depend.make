# Empty compiler generated dependencies file for dbdc_data.
# This may be replaced when dependencies are built.
