#ifndef DBDC_CLUSTER_DBSCAN_H_
#define DBDC_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "index/neighbor_index.h"

namespace dbdc {

/// DBSCAN parameters (Ester, Kriegel, Sander, Xu, KDD 1996): a point is a
/// core point when its eps-neighborhood (inclusive of itself) holds at
/// least min_pts objects.
struct DbscanParams {
  double eps = 0.0;
  int min_pts = 0;
  /// Worker threads for the ε-range-query phase (the dominant cost).
  /// 1 = fully sequential (the default), 0 = hardware concurrency. Any
  /// value produces labels bit-identical to the sequential run: the range
  /// queries are parallel, the (cheap) cluster expansion replays the
  /// sequential algorithm over the materialized core graph. See
  /// RunDbscanParallel.
  int threads = 1;
};

/// The output of a (DBSCAN-style) flat clustering: per-point labels in
/// {kNoise} ∪ {0..num_clusters-1} plus per-point core flags.
struct Clustering {
  std::vector<ClusterId> labels;
  std::vector<std::uint8_t> is_core;
  int num_clusters = 0;

  /// Number of points labeled noise.
  std::size_t CountNoise() const;
  /// Number of core points.
  std::size_t CountCore() const;
  /// Size of each cluster.
  std::vector<std::size_t> ClusterSizes() const;
};

/// Observer of the DBSCAN run. DBDC uses this to compute the complete set
/// of specific core points "on-the-fly during the DBSCAN run" (Sec. 4):
/// OnCorePoint fires exactly once per core point, in the order DBSCAN
/// discovers them, after the point's cluster id is final.
class DbscanObserver {
 public:
  virtual ~DbscanObserver() = default;
  virtual void OnClusterStarted(ClusterId cluster) = 0;
  virtual void OnCorePoint(PointId id, ClusterId cluster) = 0;
};

/// Runs DBSCAN over all points indexed by `index`.
///
/// Border points are assigned to the first cluster that reaches them (the
/// original DBSCAN semantics). The index must cover the whole dataset; the
/// result vectors are sized index.data().size().
///
/// With params.threads != 1 this dispatches to RunDbscanParallel; the
/// result (and every observer event, in order) is identical either way.
Clustering RunDbscan(const NeighborIndex& index, const DbscanParams& params,
                     DbscanObserver* observer = nullptr);

/// Two-phase parallel DBSCAN producing labels, core flags, cluster count
/// and observer event sequence *bit-identical* to the sequential
/// RunDbscan:
///
///   Phase A (parallel): the ε-neighborhood of every point — the part
///   that dominates DBSCAN's cost — is computed by concurrent range
///   queries into per-chunk buffers, then stitched into one CSR adjacency
///   ("core graph") whose content is independent of thread count and
///   scheduling (chunks are index-arithmetic splits; each range query is
///   a deterministic pure function of the index).
///
///   Phase B (sequential): the original DBSCAN control flow runs
///   unchanged, but reads neighborhoods from the core graph instead of
///   issuing range queries — O(Σ|N(p)|) pointer chasing, no distance
///   computations. Since phase B consumes exactly the data sequential
///   DBSCAN would have computed, in the same order, the output is the
///   same by construction.
///
/// `threads` follows DbscanParams::threads (0 = hardware concurrency).
/// Memory: the materialized graph holds Σ|N_eps(p)| point ids.
Clustering RunDbscanParallel(const NeighborIndex& index,
                             const DbscanParams& params, int threads,
                             DbscanObserver* observer = nullptr);

/// Verifies the DBSCAN postconditions of `result` against the index that
/// produced it; aborts with file:line context on the first violation:
///   - label/core vectors sized to the dataset, labels in {kNoise} ∪
///     [0, num_clusters);
///   - the core predicate matches a recomputation (|N_eps(p)| >= min_pts);
///   - every core point carries a cluster label, and every core point in
///     its ε-neighborhood carries the *same* label (clusters never span
///     beyond the ε-connectivity of their core members);
///   - no point in a core point's ε-neighborhood is noise;
///   - border points (labeled, non-core) lie within eps of a core point of
///     their cluster, and noise points have no core point within eps;
///   - every cluster contains at least one core point.
///
/// Costs one range query per point; RunDbscan invokes it automatically in
/// Debug / DBDC_DCHECKS builds.
void ValidateDbscanResult(const NeighborIndex& index,
                          const DbscanParams& params,
                          const Clustering& result);

}  // namespace dbdc

#endif  // DBDC_CLUSTER_DBSCAN_H_
