file(REMOVE_RECURSE
  "CMakeFiles/optics_global_test.dir/optics_global_test.cc.o"
  "CMakeFiles/optics_global_test.dir/optics_global_test.cc.o.d"
  "optics_global_test"
  "optics_global_test.pdb"
  "optics_global_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optics_global_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
