# Empty compiler generated dependencies file for relabel_test.
# This may be replaced when dependencies are built.
