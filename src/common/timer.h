#ifndef DBDC_COMMON_TIMER_H_
#define DBDC_COMMON_TIMER_H_

#include <chrono>

namespace dbdc {

/// Monotonic wall-clock stopwatch used by the DBDC driver and the benchmark
/// harness for the paper's per-phase cost model (max local time + global
/// time).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dbdc

#endif  // DBDC_COMMON_TIMER_H_
