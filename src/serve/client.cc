#include "serve/client.h"

#include <optional>
#include <utility>
#include <vector>

#include "core/model_codec.h"
#include "distrib/protocol.h"
#include "distrib/socket_util.h"

namespace dbdc::serve {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Reads from `fd` until the assembler yields a frame, the peer closes,
/// or a silent stretch exceeds `timeout_sec`.
enum class NextFrameResult { kFrame = 0, kClosed, kTimeout, kError };

NextFrameResult NextFrame(int fd, double timeout_sec,
                          FrameAssembler* assembler, Frame* out) {
  for (;;) {
    if (std::optional<Frame> frame = assembler->Next()) {
      *out = *std::move(frame);
      return NextFrameResult::kFrame;
    }
    if (assembler->corrupted()) return NextFrameResult::kError;
    std::vector<std::uint8_t> chunk;
    switch (ReadSomeFd(fd, timeout_sec, kReadChunk, &chunk)) {
      case ReadResult::kData:
        assembler->Append(chunk);
        break;
      case ReadResult::kTimeout:
        return NextFrameResult::kTimeout;
      case ReadResult::kClosed:
        return NextFrameResult::kClosed;
      case ReadResult::kError:
        return NextFrameResult::kError;
    }
  }
}

bool SendPayload(int fd, std::vector<std::uint8_t> payload, std::uint32_t seq,
                 double timeout_sec) {
  Frame frame;
  frame.type = FrameType::kData;
  frame.seq = seq;
  frame.payload = std::move(payload);
  return WriteAllFd(fd, EncodeFrame(frame), timeout_sec);
}

}  // namespace

RemoteOutcome RunRemoteJob(const JobRequest& request,
                           const ClientOptions& options) {
  RemoteOutcome outcome;
  std::string error;
  Fd fd = ConnectTcp(options.host, options.port, options.io_timeout_sec,
                     &error);
  if (!fd.valid()) {
    outcome.error = "connect to " + options.host + ":" +
                    std::to_string(options.port) + " failed: " + error;
    return outcome;
  }
  if (!SendPayload(fd.get(), EncodeJobRequest(request), /*seq=*/0,
                   options.io_timeout_sec)) {
    outcome.error = "sending the job request failed (peer reset or "
                    "write timeout)";
    return outcome;
  }

  FrameAssembler assembler(options.max_frame_bytes);
  bool accepted = false;
  for (;;) {
    Frame frame;
    switch (NextFrame(fd.get(), options.io_timeout_sec, &assembler, &frame)) {
      case NextFrameResult::kFrame:
        break;
      case NextFrameResult::kClosed:
        outcome.error = accepted
                            ? "server closed the connection before the result"
                            : "server closed the connection before answering";
        return outcome;
      case NextFrameResult::kTimeout:
        outcome.error = "server went silent for longer than io_timeout_sec";
        return outcome;
      case NextFrameResult::kError:
        outcome.error = "broken framing or socket error on the reply stream";
        return outcome;
    }
    const std::optional<MsgType> type = PeekMsgType(frame.payload);
    if (!type.has_value()) {
      outcome.error = "server sent a message of unknown type";
      return outcome;
    }
    switch (*type) {
      case MsgType::kJobAccepted: {
        JobAccepted msg;
        if (DecodeJobAccepted(frame.payload, &msg) != DecodeStatus::kOk) {
          outcome.error = "undecodable JobAccepted";
          return outcome;
        }
        accepted = true;
        outcome.job_id = msg.job_id;
        break;
      }
      case MsgType::kJobRejected: {
        JobRejected msg;
        if (DecodeJobRejected(frame.payload, &msg) != DecodeStatus::kOk) {
          outcome.error = "undecodable JobRejected";
          return outcome;
        }
        outcome.reject_field = msg.field;
        outcome.error = "rejected by server: config/" + msg.field + ": " +
                        msg.message;
        return outcome;
      }
      case MsgType::kJobStatus: {
        JobStatusUpdate msg;
        if (DecodeJobStatus(frame.payload, &msg) != DecodeStatus::kOk) {
          outcome.error = "undecodable JobStatus";
          return outcome;
        }
        if (options.on_status) options.on_status(msg.stages_done);
        break;
      }
      case MsgType::kJobResult: {
        JobResultMsg msg;
        const DecodeStatus status = DecodeJobResult(frame.payload, &msg);
        if (status != DecodeStatus::kOk) {
          outcome.error = std::string("undecodable JobResult: ") +
                          DecodeStatusName(status);
          return outcome;
        }
        outcome.ok = true;
        outcome.job_id = msg.job_id;
        outcome.result = std::move(msg.result);
        outcome.params_used = msg.params_used;
        return outcome;
      }
      default:
        outcome.error = "server sent an unexpected message type";
        return outcome;
    }
  }
}

bool RequestRemoteShutdown(const ClientOptions& options, std::string* error) {
  std::string connect_error;
  Fd fd = ConnectTcp(options.host, options.port, options.io_timeout_sec,
                     &connect_error);
  if (!fd.valid()) {
    if (error != nullptr) *error = "connect failed: " + connect_error;
    return false;
  }
  if (!SendPayload(fd.get(), EncodeShutdown(), /*seq=*/0,
                   options.io_timeout_sec)) {
    if (error != nullptr) *error = "sending the shutdown request failed";
    return false;
  }
  FrameAssembler assembler(options.max_frame_bytes);
  Frame frame;
  const NextFrameResult rr =
      NextFrame(fd.get(), options.io_timeout_sec, &assembler, &frame);
  if (rr != NextFrameResult::kFrame ||
      PeekMsgType(frame.payload) != MsgType::kShutdownAck) {
    if (error != nullptr) {
      *error = "server did not acknowledge the shutdown (is it running "
               "with --allow-shutdown?)";
    }
    return false;
  }
  return true;
}

}  // namespace dbdc::serve
