#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/optics.h"
#include "data/generators.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

TEST(OpticsTest, OrderingCoversEveryPointExactlyOnce) {
  Rng rng(1);
  const Dataset data = RandomDataset(200, 2, 0.0, 10.0, &rng);
  const LinearScanIndex index(data, Euclidean());
  const OpticsResult result = RunOptics(index, {1.0, 5});
  ASSERT_EQ(result.ordering.size(), data.size());
  std::set<PointId> seen(result.ordering.begin(), result.ordering.end());
  EXPECT_EQ(seen.size(), data.size());
}

TEST(OpticsTest, CoreDistanceIsDistanceToMinPtsThNeighbor) {
  // Collinear points at 0, 1, 2, 3: with eps=2.5 and min_pts=2 the core
  // distance of the point at 0 is the distance to its 2nd-nearest
  // neighbor *including itself* -> its 1st other neighbor at distance 1.
  Dataset data(1);
  for (int i = 0; i < 4; ++i) data.Add(Point{static_cast<double>(i)});
  const LinearScanIndex index(data, Euclidean());
  const OpticsResult result = RunOptics(index, {2.5, 2});
  EXPECT_DOUBLE_EQ(result.core_distance[0], 1.0);
  EXPECT_DOUBLE_EQ(result.core_distance[1], 1.0);
}

TEST(OpticsTest, IsolatedPointHasUndefinedCoreDistance) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  data.Add(Point{0.1, 0.0});
  data.Add(Point{0.2, 0.0});
  data.Add(Point{50.0, 50.0});
  const LinearScanIndex index(data, Euclidean());
  const OpticsResult result = RunOptics(index, {1.0, 3});
  EXPECT_EQ(result.core_distance[3], OpticsResult::kUndefined);
  EXPECT_EQ(result.reachability[3], OpticsResult::kUndefined);
}

TEST(OpticsTest, ReachabilityWithinClusterStaysSmall) {
  Dataset data(2);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    data.Add(Point{rng.Gaussian(0.0, 0.4), rng.Gaussian(0.0, 0.4)});
  }
  for (int i = 0; i < 100; ++i) {
    data.Add(Point{rng.Gaussian(30.0, 0.4), rng.Gaussian(30.0, 0.4)});
  }
  const LinearScanIndex index(data, Euclidean());
  const OpticsResult result = RunOptics(index, {50.0, 5});
  // Exactly one big reachability jump in the ordering: the switch from the
  // first cluster to the second.
  int jumps = 0;
  for (std::size_t i = 1; i < result.ordering.size(); ++i) {
    const double r = result.reachability[result.ordering[i]];
    if (r > 10.0) ++jumps;
  }
  EXPECT_EQ(jumps, 1);
}

// The headline OPTICS property the paper leans on for the global model:
// one run supports extraction at any eps' <= eps, and each extraction is
// DBSCAN-equivalent.
class OpticsExtractionTest : public ::testing::TestWithParam<double> {};

TEST_P(OpticsExtractionTest, ExtractionMatchesDirectDbscan) {
  const SyntheticDataset synth = MakeTestDatasetC(21);
  const int min_pts = synth.suggested_params.min_pts;
  const LinearScanIndex index(synth.data, Euclidean());
  const OpticsResult optics = RunOptics(index, {8.0, min_pts});
  const double eps_prime = GetParam();
  const Clustering extracted = ExtractDbscanClustering(optics, eps_prime);
  const Clustering direct = RunDbscan(index, {eps_prime, min_pts});
  ExpectDbscanEquivalent(synth.data, Euclidean(), {eps_prime, min_pts},
                         direct, extracted, BorderPolicy::kOpticsRelaxed);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, OpticsExtractionTest,
                         ::testing::Values(0.8, 1.5, 2.5, 4.0, 7.9));

TEST(OpticsTest, ExtractionAtGeneratingEpsMatchesDbscanOnNoisyData) {
  const SyntheticDataset synth = MakeTestDatasetB(22);
  const DbscanParams params = synth.suggested_params;
  const LinearScanIndex index(synth.data, Euclidean());
  const OpticsResult optics = RunOptics(index, {params.eps, params.min_pts});
  const Clustering extracted = ExtractDbscanClustering(optics, params.eps);
  const Clustering direct = RunDbscan(index, params);
  ExpectDbscanEquivalent(synth.data, Euclidean(), params, direct, extracted,
                         BorderPolicy::kOpticsRelaxed);
}

}  // namespace
}  // namespace dbdc
