#ifndef DBDC_CLUSTER_PARAM_ESTIMATION_H_
#define DBDC_CLUSTER_PARAM_ESTIMATION_H_

#include <string_view>
#include <vector>

#include "cluster/dbscan.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// The sorted k-dist graph from the DBSCAN paper (Sec. 4.2): for every
/// indexed point, the distance to its k-th nearest *other* neighbor,
/// sorted in descending order. Its "valley"/knee separates noise (left,
/// large k-dist) from cluster points (right, small k-dist), and the
/// k-dist value at the knee is the suggested Eps.
std::vector<double> SortedKDistances(const NeighborIndex& index, int k);

/// Suggests a DBSCAN Eps for the indexed data with min_pts = k + 1,
/// using the maximum-deviation knee heuristic on the sorted k-dist
/// graph: the knee is the point of the curve farthest from the straight
/// line connecting its endpoints. Returns 0 for datasets with fewer
/// than 3 points.
double SuggestEps(const NeighborIndex& index, int min_pts);

/// Estimates full DBSCAN parameters for `data` with the average
/// k-th-NN-distance heuristic: Eps = the mean over all points of the
/// distance to the k-th nearest *other* point, MinPts = k + 1 (a point
/// is core when its Eps-ball holds at least its k neighbors plus
/// itself). The classic k = 4 (the DBSCAN paper's fixed choice for 2D
/// data) is a good default.
///
/// Cheaper and more robust to automate than the knee heuristic — the
/// mean needs no curve-shape detection — which makes it the estimator
/// behind `dbdc_cli --auto-params` and the serve layer's auto_params job
/// option. Deterministic: depends only on the point set and k.
///
/// Returns {0, 0} (invalid; DbdcConfig::Validate rejects it) whenever the
/// checked variant below reports a failure. Callers that can surface an
/// error should prefer EstimateDbscanParamsChecked, which names the
/// failure instead of handing back an unusable eps.
DbscanParams EstimateDbscanParams(const Dataset& data, const Metric& metric,
                                  int k);

/// Why an estimate failed (or didn't).
enum class ParamEstimationStatus {
  kOk,
  /// The dataset holds fewer than k + 1 points (or every per-point k-NN
  /// result came back short), so no k-th-neighbor distance exists to
  /// average.
  kTooFewPoints,
  /// The averaged k-th-neighbor distance is not a positive finite eps —
  /// e.g. every point is a duplicate of another (all k-distances zero),
  /// or the data contains non-finite coordinates.
  kDegenerateDistances,
};

/// Human-readable description of `status`, suitable for error reporting
/// ("--auto-params failed: <message>").
std::string_view ParamEstimationStatusMessage(ParamEstimationStatus status);

/// An estimate plus its validity. `params` stays {0, 0} unless ok().
struct ParamEstimate {
  ParamEstimationStatus status = ParamEstimationStatus::kOk;
  DbscanParams params;
  bool ok() const { return status == ParamEstimationStatus::kOk; }
};

/// EstimateDbscanParams with an explicit status: degenerate datasets
/// (too small, all-duplicate, non-finite) yield a named failure instead
/// of a silently unusable eps of 0 or NaN.
ParamEstimate EstimateDbscanParamsChecked(const Dataset& data,
                                          const Metric& metric, int k);

}  // namespace dbdc

#endif  // DBDC_CLUSTER_PARAM_ESTIMATION_H_
