#ifndef DBDC_COMMON_DATASET_H_
#define DBDC_COMMON_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace dbdc {

/// A collection of d-dimensional points with dense integer ids.
///
/// Storage is a single flat array (row-major), so a point is a contiguous
/// span of `dim()` doubles. Points are append-only; ids are assigned in
/// insertion order starting at 0. Indices built over a Dataset hold a
/// non-owning pointer, so a Dataset must outlive any index built on it.
class Dataset {
 public:
  /// Creates an empty dataset of points with `dim` coordinates (dim >= 1).
  explicit Dataset(int dim);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Appends a point; `coords.size()` must equal `dim()`. Returns its id.
  PointId Add(std::span<const double> coords);

  /// Appends every point of `other` (dimensions must match).
  void Append(const Dataset& other);

  /// Coordinates of point `id`.
  std::span<const double> point(PointId id) const {
    DBDC_CHECK(id >= 0 && static_cast<std::size_t>(id) < size());
    return {data_.data() + static_cast<std::size_t>(id) * dim_,
            static_cast<std::size_t>(dim_)};
  }

  /// Number of points.
  std::size_t size() const { return data_.size() / dim_; }

  bool empty() const { return data_.empty(); }

  /// Dimensionality of every point.
  int dim() const { return dim_; }

  /// The flat row-major store: point `id` occupies the `dim()` doubles at
  /// raw() + id*dim(). Backs the batched SIMD kernels
  /// (common/simd_kernels.h), which score runs of rows in one call.
  const double* raw() const { return data_.data(); }

  /// Reserves storage for `n` points.
  void Reserve(std::size_t n) { data_.reserve(n * dim_); }

 private:
  int dim_;
  std::vector<double> data_;
};

}  // namespace dbdc

#endif  // DBDC_COMMON_DATASET_H_
