// Negative control for the tsafety preset: accesses a DBDC_GUARDED_BY
// member without holding its mutex. Under Clang with
// -Werror=thread-safety-analysis this translation unit MUST fail to
// compile; the CTest target registers it with WILL_FAIL.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbdc {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG: mu_ not held — thread-safety analysis must reject.
  }

  int Read() const {
    return value_;  // BUG: mu_ not held here either.
  }

 private:
  mutable Mutex mu_;
  int value_ DBDC_GUARDED_BY(mu_) = 0;
};

int Drive() {
  Counter counter;
  counter.Increment();
  return counter.Read();
}

}  // namespace dbdc
