// Seeded violation: undocumented reinterpret_cast. Type punning through
// reinterpret_cast is UB for anything but byte access; audited sites
// must carry an inline `dbdc-lint: allow(no-reinterpret-cast)`.
#include <cstdint>

namespace dbdc {

double BadPun(std::uint64_t bits) {
  return *reinterpret_cast<double*>(&bits);
}

}  // namespace dbdc
