#include "common/dataset.h"

namespace dbdc {

Dataset::Dataset(int dim) : dim_(dim) { DBDC_CHECK(dim >= 1); }

PointId Dataset::Add(std::span<const double> coords) {
  DBDC_CHECK(static_cast<int>(coords.size()) == dim_);
  const PointId id = static_cast<PointId>(size());
  data_.insert(data_.end(), coords.begin(), coords.end());
  return id;
}

void Dataset::Append(const Dataset& other) {
  DBDC_CHECK(other.dim() == dim_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

}  // namespace dbdc
