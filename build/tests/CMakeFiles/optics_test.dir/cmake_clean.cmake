file(REMOVE_RECURSE
  "CMakeFiles/optics_test.dir/optics_test.cc.o"
  "CMakeFiles/optics_test.dir/optics_test.cc.o.d"
  "optics_test"
  "optics_test.pdb"
  "optics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
