#ifndef DBDC_CORE_RELABEL_H_
#define DBDC_CORE_RELABEL_H_

#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "core/global_model.h"

namespace dbdc {

/// Client-side relabeling (Sec. 7): every local object within the
/// ε_r-neighborhood of a global representative r is assigned r's global
/// cluster id — this can merge formerly independent local clusters and
/// absorb former local noise. Objects covered by no representative stay
/// noise.
///
/// When several representatives of different global clusters cover an
/// object, the nearest one wins (the paper leaves this tie open; nearest
/// is the deterministic choice).
///
/// Returns one global label (or kNoise) per point of `site_data`.
std::vector<ClusterId> RelabelSite(const Dataset& site_data,
                                   const GlobalModel& global,
                                   const Metric& metric);

}  // namespace dbdc

#endif  // DBDC_CORE_RELABEL_H_
