file(REMOVE_RECURSE
  "CMakeFiles/dbdc_cluster.dir/cluster/dbscan.cc.o"
  "CMakeFiles/dbdc_cluster.dir/cluster/dbscan.cc.o.d"
  "CMakeFiles/dbdc_cluster.dir/cluster/incremental_dbscan.cc.o"
  "CMakeFiles/dbdc_cluster.dir/cluster/incremental_dbscan.cc.o.d"
  "CMakeFiles/dbdc_cluster.dir/cluster/kmeans.cc.o"
  "CMakeFiles/dbdc_cluster.dir/cluster/kmeans.cc.o.d"
  "CMakeFiles/dbdc_cluster.dir/cluster/optics.cc.o"
  "CMakeFiles/dbdc_cluster.dir/cluster/optics.cc.o.d"
  "CMakeFiles/dbdc_cluster.dir/cluster/param_estimation.cc.o"
  "CMakeFiles/dbdc_cluster.dir/cluster/param_estimation.cc.o.d"
  "libdbdc_cluster.a"
  "libdbdc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
