// End-to-end tests of the serving layer (DESIGN.md §12): config
// validation surfaces, the serve wire codec, the multi-tenant JobManager,
// and a real DbdcServer on a loopback TCP port driven through the client
// library — including the two acceptance criteria of the serving PR:
// remote labels byte-identical to a local run, and >= 2 concurrent jobs
// with isolated per-job metrics snapshots.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/distance.h"
#include "core/dbdc.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "distrib/network.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/job_manager.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace dbdc {
namespace {

using serve::ClientOptions;
using serve::DbdcServer;
using serve::GlobalStrategyKind;
using serve::JobLimits;
using serve::JobManager;
using serve::JobRequest;
using serve::RemoteOutcome;
using serve::ServerOptions;

// ---------------------------------------------------------------------------
// Satellite 2: DbdcConfig::Validate names the offending field.

TEST(ConfigValidateTest, DefaultConfigIsValid) {
  DbdcConfig config;
  config.local_dbscan = {1.0, 5};
  const ConfigStatus status = config.Validate();
  EXPECT_TRUE(status.ok);
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.ToString(), "");
}

TEST(ConfigValidateTest, NamesTheOffendingField) {
  struct Case {
    const char* field;
    void (*mutate)(DbdcConfig*);
  };
  const Case cases[] = {
      {"local_dbscan.eps", [](DbdcConfig* c) { c->local_dbscan.eps = 0.0; }},
      {"local_dbscan.eps",
       [](DbdcConfig* c) { c->local_dbscan.eps = -1.0; }},
      {"local_dbscan.min_pts",
       [](DbdcConfig* c) { c->local_dbscan.min_pts = 0; }},
      {"local_dbscan.threads",
       [](DbdcConfig* c) { c->local_dbscan.threads = -1; }},
      {"eps_global", [](DbdcConfig* c) { c->eps_global = -0.5; }},
      {"condense_eps", [](DbdcConfig* c) { c->condense_eps = -1.0; }},
      {"num_sites", [](DbdcConfig* c) { c->num_sites = 0; }},
      {"num_threads", [](DbdcConfig* c) { c->num_threads = -2; }},
      {"kmeans.max_iterations",
       [](DbdcConfig* c) { c->kmeans.max_iterations = 0; }},
      {"kmeans.tolerance",
       [](DbdcConfig* c) { c->kmeans.tolerance = -0.1; }},
      {"optics.max_eps_global",
       [](DbdcConfig* c) { c->optics.max_eps_global = -1.0; }},
      {"protocol.max_attempts",
       [](DbdcConfig* c) {
         c->protocol.enabled = true;
         c->protocol.max_attempts = 0;
       }},
      {"protocol.retry_backoff_sec",
       [](DbdcConfig* c) {
         c->protocol.enabled = true;
         c->protocol.retry_backoff_sec = -1.0;
       }},
      {"protocol.collection_deadline_sec",
       [](DbdcConfig* c) {
         c->protocol.enabled = true;
         c->protocol.collection_deadline_sec = 0.0;
       }},
  };
  for (const Case& test_case : cases) {
    DbdcConfig config;
    config.local_dbscan = {1.0, 5};
    test_case.mutate(&config);
    const ConfigStatus status = config.Validate();
    EXPECT_FALSE(status.ok) << test_case.field;
    EXPECT_EQ(status.field, test_case.field);
    EXPECT_FALSE(status.message.empty());
    EXPECT_NE(status.ToString().find(test_case.field), std::string::npos);
  }
}

TEST(ConfigValidateTest, NanNeverValidates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  DbdcConfig config;
  config.local_dbscan = {nan, 5};
  EXPECT_FALSE(config.Validate().ok);
  config.local_dbscan = {1.0, 5};
  config.eps_global = nan;
  EXPECT_FALSE(config.Validate().ok);
}

// ---------------------------------------------------------------------------
// Serve wire codec round trips.

JobRequest SmallRequest(int seed = 7) {
  const SyntheticDataset synth = MakeTestDatasetC(seed);
  JobRequest request;
  request.data = synth.data;
  request.config.local_dbscan = synth.suggested_params;
  request.config.num_sites = 3;
  return request;
}

TEST(ServeWireTest, JobRequestRoundTrips) {
  JobRequest request = SmallRequest();
  request.metric_name = "manhattan";
  request.config.seed = 99;
  request.config.protocol.enabled = true;
  request.config.optics.max_eps_global = 3.5;
  request.options.global_strategy = GlobalStrategyKind::kOptics;
  request.options.auto_params = true;
  request.options.auto_params_k = 6;

  JobRequest back;
  ASSERT_EQ(serve::DecodeJobRequest(serve::EncodeJobRequest(request), &back),
            DecodeStatus::kOk);
  EXPECT_EQ(back.metric_name, "manhattan");
  EXPECT_EQ(back.data.size(), request.data.size());
  EXPECT_EQ(back.data.dim(), request.data.dim());
  for (std::size_t p = 0; p < request.data.size(); ++p) {
    for (int d = 0; d < request.data.dim(); ++d) {
      EXPECT_EQ(back.data.point(static_cast<PointId>(p))[d],
                request.data.point(static_cast<PointId>(p))[d]);
    }
  }
  EXPECT_EQ(back.config.local_dbscan.eps, request.config.local_dbscan.eps);
  EXPECT_EQ(back.config.seed, 99u);
  EXPECT_TRUE(back.config.protocol.enabled);
  EXPECT_EQ(back.config.optics.max_eps_global, 3.5);
  EXPECT_EQ(back.options.global_strategy, GlobalStrategyKind::kOptics);
  EXPECT_TRUE(back.options.auto_params);
  EXPECT_EQ(back.options.auto_params_k, 6);
  EXPECT_EQ(back.config.partitioner, nullptr);
}

TEST(ServeWireTest, TruncationAndTrailingGarbageAreRejected) {
  const std::vector<std::uint8_t> bytes =
      serve::EncodeJobRequest(SmallRequest());
  JobRequest out;
  for (std::size_t len = 0; len < bytes.size();
       len += std::max<std::size_t>(1, bytes.size() / 37)) {
    EXPECT_NE(serve::DecodeJobRequest(
                  std::span(bytes.data(), len), &out),
              DecodeStatus::kOk)
        << "truncation to " << len << " accepted";
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_EQ(serve::DecodeJobRequest(padded, &out), DecodeStatus::kMalformed);
}

TEST(ServeWireTest, ControlMessagesRoundTrip) {
  serve::JobAccepted accepted{42, 3};
  serve::JobAccepted accepted_back;
  ASSERT_EQ(serve::DecodeJobAccepted(serve::EncodeJobAccepted(accepted),
                                     &accepted_back),
            DecodeStatus::kOk);
  EXPECT_EQ(accepted_back.job_id, 42u);
  EXPECT_EQ(accepted_back.queue_depth, 3);

  serve::JobRejected rejected{"local_dbscan.eps", "must be > 0"};
  serve::JobRejected rejected_back;
  ASSERT_EQ(serve::DecodeJobRejected(serve::EncodeJobRejected(rejected),
                                     &rejected_back),
            DecodeStatus::kOk);
  EXPECT_EQ(rejected_back.field, "local_dbscan.eps");
  EXPECT_EQ(rejected_back.message, "must be > 0");

  serve::JobStatusUpdate status{7, 4};
  serve::JobStatusUpdate status_back;
  ASSERT_EQ(serve::DecodeJobStatus(serve::EncodeJobStatus(status),
                                   &status_back),
            DecodeStatus::kOk);
  EXPECT_EQ(status_back.job_id, 7u);
  EXPECT_EQ(status_back.stages_done, 4);

  EXPECT_EQ(serve::PeekMsgType(serve::EncodeShutdown()),
            serve::MsgType::kShutdown);
  EXPECT_EQ(serve::PeekMsgType(serve::EncodeShutdownAck()),
            serve::MsgType::kShutdownAck);
}

TEST(ServeWireTest, JobResultRoundTripsTheFullResultSurface) {
  const SyntheticDataset synth = MakeTestDatasetC(8);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 3;
  config.protocol.enabled = true;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);

  serve::JobResultMsg msg;
  msg.job_id = 5;
  msg.result = result;
  msg.params_used = config.local_dbscan;
  serve::JobResultMsg back;
  ASSERT_EQ(serve::DecodeJobResult(serve::EncodeJobResult(msg), &back),
            DecodeStatus::kOk);
  EXPECT_EQ(back.job_id, 5u);
  EXPECT_EQ(back.result.labels, result.labels);
  EXPECT_EQ(back.result.num_global_clusters, result.num_global_clusters);
  EXPECT_EQ(back.result.num_representatives, result.num_representatives);
  EXPECT_EQ(back.result.bytes_uplink, result.bytes_uplink);
  EXPECT_EQ(back.result.bytes_downlink, result.bytes_downlink);
  EXPECT_EQ(back.result.eps_global_used, result.eps_global_used);
  EXPECT_EQ(back.result.site_sizes, result.site_sizes);
  EXPECT_EQ(back.result.sites_reporting, result.sites_reporting);
  EXPECT_EQ(back.result.simd_tier, result.simd_tier);
  EXPECT_EQ(EncodeGlobalModel(back.result.global_model),
            EncodeGlobalModel(result.global_model));
  ASSERT_EQ(back.result.stage_stats.size(), result.stage_stats.size());
  for (std::size_t i = 0; i < result.stage_stats.size(); ++i) {
    EXPECT_EQ(back.result.stage_stats[i].stage, result.stage_stats[i].stage);
    EXPECT_EQ(back.result.stage_stats[i].bytes_uplink,
              result.stage_stats[i].bytes_uplink);
  }
  // The embedded metrics snapshot survives the wire counter-for-counter.
  for (int c = 0; c < obs::kNumCounters; ++c) {
    EXPECT_EQ(back.result.metrics_snapshot.counter(
                  static_cast<obs::Counter>(c)),
              result.metrics_snapshot.counter(static_cast<obs::Counter>(c)))
        << "counter " << c;
  }
  for (int g = 0; g < obs::kNumGauges; ++g) {
    EXPECT_EQ(
        back.result.metrics_snapshot.gauge(static_cast<obs::Gauge>(g)),
        result.metrics_snapshot.gauge(static_cast<obs::Gauge>(g)))
        << "gauge " << g;
  }
  EXPECT_EQ(back.params_used.eps, config.local_dbscan.eps);
  EXPECT_EQ(back.params_used.min_pts, config.local_dbscan.min_pts);
}

// ---------------------------------------------------------------------------
// Satellite 1: the deprecated RunDbdcOptics overload forwards into
// config.optics.

TEST(OpticsConfigFoldTest, DeprecatedOverloadMatchesConfigField) {
  const SyntheticDataset synth = MakeTestDatasetC(9);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 3;

  DbdcConfig folded = config;
  folded.optics.max_eps_global = 6.0;
  const DbdcResult via_config =
      RunDbdcOptics(synth.data, Euclidean(), folded);
  SimulatedNetwork net;
  const DbdcResult via_param =
      RunDbdcOptics(synth.data, Euclidean(), config, &net, 6.0);
  EXPECT_EQ(via_config.labels, via_param.labels);
  EXPECT_EQ(via_config.num_global_clusters, via_param.num_global_clusters);
  EXPECT_EQ(via_config.bytes_uplink, via_param.bytes_uplink);
}

// ---------------------------------------------------------------------------
// JobManager: admission, isolation, backpressure.

TEST(JobManagerTest, RejectsOverLimitAndInvalidRequestsWithFieldNames) {
  JobLimits limits;
  limits.max_points = 100;
  limits.max_sites = 4;
  JobManager manager(limits);

  JobRequest big = SmallRequest();
  ASSERT_GT(big.data.size(), 100u);
  EXPECT_EQ(manager.Submit(big).field, "data.points");

  const SyntheticDataset tiny = MakeTestDatasetC(7);
  JobRequest sites = SmallRequest();
  sites.data = Dataset(2);
  for (PointId p = 0; p < 50; ++p) {
    sites.data.Add(tiny.data.point(p));
  }
  sites.config.num_sites = 9;
  EXPECT_EQ(manager.Submit(sites).field, "num_sites");

  JobRequest metric = sites;
  metric.config.num_sites = 2;
  metric.metric_name = "hamming";
  EXPECT_EQ(manager.Submit(metric).field, "metric");

  JobRequest bad_eps = sites;
  bad_eps.config.num_sites = 2;
  bad_eps.config.local_dbscan.eps = -1.0;
  EXPECT_EQ(manager.Submit(bad_eps).field, "local_dbscan.eps");

  JobRequest bad_k = sites;
  bad_k.config.num_sites = 2;
  bad_k.options.auto_params = true;
  bad_k.options.auto_params_k = 0;
  EXPECT_EQ(manager.Submit(bad_k).field, "options.auto_params_k");

  EXPECT_EQ(manager.jobs_finished(), 0u);
}

TEST(JobManagerTest, QueueFullIsRejectedAsBackpressure) {
  JobLimits limits;
  limits.max_active = 1;
  limits.max_queued = 1;
  JobManager manager(limits);
  // Enough submissions that at least one must find both the executor and
  // the one-deep queue busy. Every decision is either an admission or a
  // named "server.queue" rejection — never a hang or a crash.
  int rejected = 0;
  std::vector<std::uint64_t> admitted;
  for (int i = 0; i < 8; ++i) {
    const serve::AdmitDecision decision = manager.Submit(SmallRequest(i));
    if (decision.accepted) {
      admitted.push_back(decision.job_id);
    } else {
      EXPECT_EQ(decision.field, "server.queue");
      ++rejected;
    }
  }
  EXPECT_GE(admitted.size(), 1u);
  for (const std::uint64_t id : admitted) {
    EXPECT_EQ(manager.Wait(id).state, serve::JobState::kDone);
  }
  EXPECT_EQ(manager.jobs_finished(), admitted.size());
  manager.Shutdown();
}

TEST(JobManagerTest, ConcurrentJobsGetIsolatedMetricsSnapshots) {
  JobLimits limits;
  limits.max_active = 2;
  limits.max_queued = 4;
  JobManager manager(limits);

  // Two jobs of different sizes running concurrently: each result's
  // snapshot must carry its *own* dataset-points gauge and byte
  // counters, proving per-job registries never bleed into each other.
  const SyntheticDataset synth_a = MakeTestDatasetA(11);
  const SyntheticDataset synth_c = MakeTestDatasetC(11);
  JobRequest job_a;
  job_a.data = synth_a.data;
  job_a.config.local_dbscan = synth_a.suggested_params;
  job_a.config.num_sites = 4;
  JobRequest job_c;
  job_c.data = synth_c.data;
  job_c.config.local_dbscan = synth_c.suggested_params;
  job_c.config.num_sites = 3;

  const serve::AdmitDecision admit_a = manager.Submit(job_a);
  const serve::AdmitDecision admit_c = manager.Submit(job_c);
  ASSERT_TRUE(admit_a.accepted) << admit_a.field << ": " << admit_a.message;
  ASSERT_TRUE(admit_c.accepted) << admit_c.field << ": " << admit_c.message;

  const serve::JobOutcome& outcome_a = manager.Wait(admit_a.job_id);
  const serve::JobOutcome& outcome_c = manager.Wait(admit_c.job_id);
  ASSERT_EQ(outcome_a.state, serve::JobState::kDone);
  ASSERT_EQ(outcome_c.state, serve::JobState::kDone);

  const obs::MetricsSnapshot& snap_a = outcome_a.result.metrics_snapshot;
  const obs::MetricsSnapshot& snap_c = outcome_c.result.metrics_snapshot;
  EXPECT_EQ(snap_a.gauge(obs::Gauge::kDatasetPoints),
            static_cast<double>(synth_a.data.size()));
  EXPECT_EQ(snap_c.gauge(obs::Gauge::kDatasetPoints),
            static_cast<double>(synth_c.data.size()));
  EXPECT_EQ(snap_a.counter(obs::Counter::kBytesUplink),
            outcome_a.result.bytes_uplink);
  EXPECT_EQ(snap_c.counter(obs::Counter::kBytesUplink),
            outcome_c.result.bytes_uplink);
  EXPECT_NE(outcome_a.result.bytes_uplink, outcome_c.result.bytes_uplink);

  // Isolation also means equality with a solo local run of the same job.
  SimulatedNetwork net;
  const DbdcResult solo =
      RunDbdc(synth_a.data, Euclidean(), job_a.config, &net);
  EXPECT_EQ(outcome_a.result.labels, solo.labels);
  EXPECT_EQ(outcome_a.result.bytes_uplink, solo.bytes_uplink);
}

TEST(JobManagerTest, AutoParamsEstimatesOnTheServer) {
  JobManager manager(JobLimits{});
  JobRequest request = SmallRequest();
  request.config.local_dbscan = {123.0, 77};  // Placeholder; overridden.
  request.options.auto_params = true;
  request.options.auto_params_k = 4;
  const serve::AdmitDecision decision = manager.Submit(request);
  ASSERT_TRUE(decision.accepted) << decision.field;
  const serve::JobOutcome& outcome = manager.Wait(decision.job_id);
  ASSERT_EQ(outcome.state, serve::JobState::kDone);
  EXPECT_GT(outcome.params_used.eps, 0.0);
  EXPECT_LT(outcome.params_used.eps, 123.0);
  EXPECT_EQ(outcome.params_used.min_pts, 5);
}

// ---------------------------------------------------------------------------
// Full client/server loop over a real TCP port.

ServerOptions QuietServer() {
  ServerOptions options;
  options.port = 0;
  return options;
}

TEST(ServingTest, RemoteJobIsByteIdenticalToLocalRun) {
  DbdcServer server(QuietServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const SyntheticDataset synth = MakeTestDatasetA(41);
  JobRequest request;
  request.data = synth.data;
  request.config.local_dbscan = synth.suggested_params;
  request.config.num_sites = 4;

  ClientOptions client;
  client.port = server.port();
  std::vector<int> stages_seen;
  client.on_status = [&stages_seen](int done) {
    stages_seen.push_back(done);
  };
  const RemoteOutcome outcome = serve::RunRemoteJob(request, client);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  SimulatedNetwork net;
  const DbdcResult local =
      RunDbdc(synth.data, Euclidean(), request.config, &net);
  EXPECT_EQ(outcome.result.labels, local.labels);
  EXPECT_EQ(outcome.result.bytes_uplink, local.bytes_uplink);
  EXPECT_EQ(outcome.result.bytes_downlink, local.bytes_downlink);
  EXPECT_EQ(outcome.result.num_global_clusters, local.num_global_clusters);
  EXPECT_EQ(EncodeGlobalModel(outcome.result.global_model),
            EncodeGlobalModel(local.global_model));
  // The status stream walked the full stage ladder in order.
  ASSERT_EQ(stages_seen.size(), static_cast<std::size_t>(kNumStages));
  for (int i = 0; i < kNumStages; ++i) EXPECT_EQ(stages_seen[i], i + 1);

  server.Stop();
  EXPECT_EQ(server.jobs_served(), 1u);
}

TEST(ServingTest, TwoConcurrentClientsGetIsolatedResults) {
  ServerOptions options = QuietServer();
  options.limits.max_active = 2;
  DbdcServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const SyntheticDataset synth_a = MakeTestDatasetA(42);
  const SyntheticDataset synth_b = MakeTestDatasetB(42);
  RemoteOutcome outcome_a, outcome_b;
  std::thread client_a([&] {
    JobRequest request;
    request.data = synth_a.data;
    request.config.local_dbscan = synth_a.suggested_params;
    request.config.num_sites = 4;
    ClientOptions client;
    client.port = server.port();
    outcome_a = serve::RunRemoteJob(request, client);
  });
  std::thread client_b([&] {
    JobRequest request;
    request.data = synth_b.data;
    request.config.local_dbscan = synth_b.suggested_params;
    request.config.num_sites = 3;
    ClientOptions client;
    client.port = server.port();
    outcome_b = serve::RunRemoteJob(request, client);
  });
  client_a.join();
  client_b.join();
  ASSERT_TRUE(outcome_a.ok) << outcome_a.error;
  ASSERT_TRUE(outcome_b.ok) << outcome_b.error;

  // Per-job isolation across real concurrent sessions: each snapshot
  // reports its own dataset size and reconciles with its own wire bytes.
  EXPECT_EQ(outcome_a.result.metrics_snapshot.gauge(
                obs::Gauge::kDatasetPoints),
            static_cast<double>(synth_a.data.size()));
  EXPECT_EQ(outcome_b.result.metrics_snapshot.gauge(
                obs::Gauge::kDatasetPoints),
            static_cast<double>(synth_b.data.size()));
  EXPECT_EQ(outcome_a.result.metrics_snapshot.counter(
                obs::Counter::kBytesUplink),
            outcome_a.result.bytes_uplink);
  EXPECT_EQ(outcome_b.result.metrics_snapshot.counter(
                obs::Counter::kBytesUplink),
            outcome_b.result.bytes_uplink);
  EXPECT_EQ(outcome_a.result.labels.size(), synth_a.data.size());
  EXPECT_EQ(outcome_b.result.labels.size(), synth_b.data.size());

  server.Stop();
  EXPECT_EQ(server.jobs_served(), 2u);
}

TEST(ServingTest, BadConfigIsRejectedWithTheFieldOnTheWire) {
  DbdcServer server(QuietServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  JobRequest request = SmallRequest();
  request.config.local_dbscan.eps = -3.0;
  ClientOptions client;
  client.port = server.port();
  const RemoteOutcome outcome = serve::RunRemoteJob(request, client);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.reject_field, "local_dbscan.eps");
  EXPECT_NE(outcome.error.find("local_dbscan.eps"), std::string::npos);
  server.Stop();
  EXPECT_EQ(server.jobs_served(), 0u);
}

TEST(ServingTest, RemoteAutoParamsAndOpticsStrategyWork) {
  DbdcServer server(QuietServer());
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const SyntheticDataset synth = MakeTestDatasetC(43);
  JobRequest request;
  request.data = synth.data;
  request.config.local_dbscan = {1.0, 5};
  request.config.num_sites = 3;
  request.options.auto_params = true;
  request.options.global_strategy = GlobalStrategyKind::kOptics;
  ClientOptions client;
  client.port = server.port();
  const RemoteOutcome outcome = serve::RunRemoteJob(request, client);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GT(outcome.params_used.eps, 0.0);
  EXPECT_EQ(outcome.params_used.min_pts, 5);
  EXPECT_GT(outcome.result.num_global_clusters, 0);
  server.Stop();
}

TEST(ServingTest, MaxJobsServedStopsTheServerCleanly) {
  ServerOptions options = QuietServer();
  options.max_jobs_served = 1;
  DbdcServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  JobRequest request = SmallRequest();
  ClientOptions client;
  client.port = server.port();
  const RemoteOutcome outcome = serve::RunRemoteJob(request, client);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  // The server drains itself; Wait() returns without Stop().
  server.Wait();
  EXPECT_EQ(server.jobs_served(), 1u);
}

TEST(ServingTest, RemoteShutdownIsHonoredOnlyWhenAllowed) {
  ServerOptions options = QuietServer();
  options.allow_remote_shutdown = true;
  DbdcServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ClientOptions client;
  client.port = server.port();
  EXPECT_TRUE(serve::RequestRemoteShutdown(client, &error)) << error;
  server.Wait();

  DbdcServer locked(QuietServer());
  ASSERT_TRUE(locked.Start(&error)) << error;
  ClientOptions locked_client;
  locked_client.port = locked.port();
  locked_client.io_timeout_sec = 2.0;
  EXPECT_FALSE(serve::RequestRemoteShutdown(locked_client, &error));
  // Still serving: a job after the refused shutdown succeeds.
  const RemoteOutcome outcome =
      serve::RunRemoteJob(SmallRequest(), locked_client);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  locked.Stop();
}

}  // namespace
}  // namespace dbdc
