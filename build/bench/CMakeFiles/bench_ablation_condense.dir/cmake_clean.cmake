file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_condense.dir/bench_ablation_condense.cc.o"
  "CMakeFiles/bench_ablation_condense.dir/bench_ablation_condense.cc.o.d"
  "bench_ablation_condense"
  "bench_ablation_condense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_condense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
