file(REMOVE_RECURSE
  "CMakeFiles/eps_explorer.dir/eps_explorer.cpp.o"
  "CMakeFiles/eps_explorer.dir/eps_explorer.cpp.o.d"
  "eps_explorer"
  "eps_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eps_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
