file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sites_table.dir/bench_fig10_sites_table.cc.o"
  "CMakeFiles/bench_fig10_sites_table.dir/bench_fig10_sites_table.cc.o.d"
  "bench_fig10_sites_table"
  "bench_fig10_sites_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sites_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
