// Ablation (DESIGN.md): R*-tree construction strategy. The index
// ablation shows dynamic R* insertion dominates the build cost on
// static data; Sort-Tile-Recursive bulk loading (Leutenegger et al.)
// packs the same tree bottom-up. Compares build time, tree height, and
// the resulting DBSCAN runtime; both trees must produce identical
// clusterings.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "index/rstar_tree.h"

namespace dbdc {
namespace {

struct Row {
  std::size_t n = 0;
  std::string method;
  double build_s = 0.0;
  double dbscan_s = 0.0;
  int height = 0;
  int clusters = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

void BM_Construction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool bulk = state.range(1) != 0;
  const SyntheticDataset synth = MakeScaledDataset(n);
  for (auto _ : state) {
    Timer build_timer;
    const RStarTree tree(synth.data, Euclidean(), /*index_all=*/true,
                         bulk ? RStarTree::Construction::kBulkLoadStr
                              : RStarTree::Construction::kInsert);
    const double build_s = build_timer.Seconds();
    Timer run_timer;
    const Clustering result =
        RunDbscan(tree, synth.suggested_params);
    const double dbscan_s = run_timer.Seconds();
    benchmark::DoNotOptimize(result.num_clusters);
    Rows().push_back(Row{n, bulk ? "STR bulk load" : "R* insertion",
                         build_s, dbscan_s, tree.height(),
                         result.num_clusters});
    state.counters["build_s"] = build_s;
    state.counters["height"] = tree.height();
  }
}

void RegisterAll() {
  for (const std::int64_t n : {10000, 50000, 100000}) {
    for (const std::int64_t bulk : {0, 1}) {
      benchmark::RegisterBenchmark(
          bulk != 0 ? "rstar_str_bulk" : "rstar_insert", BM_Construction)
          ->Args({n, bulk})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  bench::Table table("Ablation — R*-tree construction: repeated R* "
                     "insertion vs STR bulk loading");
  table.SetHeader({"n", "method", "build [s]", "DBSCAN [s]", "height",
                   "clusters"});
  for (const Row& row : Rows()) {
    table.AddRow({bench::Fmt("%zu", row.n), row.method,
                  bench::Fmt("%.4f", row.build_s),
                  bench::Fmt("%.4f", row.dbscan_s),
                  bench::Fmt("%d", row.height),
                  bench::Fmt("%d", row.clusters)});
  }
  table.Print();
  std::printf("Expectation: STR builds one to two orders of magnitude "
              "faster, is never taller, finds the same clusters, and "
              "queries at least as fast.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
