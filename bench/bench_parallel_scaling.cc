// Parallel scaling + distance fast-path benchmark.
//
// Measures, on this machine:
//   1. Two-phase parallel DBSCAN (RunDbscan with params.threads) across
//      threads x index x dataset, reporting speedup vs the 1-thread run
//      and verifying labels are identical to the sequential run.
//   2. Parallel relabeling (RelabelSite with a shared RelabelContext)
//      across the same thread counts.
//   3. The devirtualized squared-distance fast path: central DBSCAN with
//      the Euclidean() singleton (fast path) vs an equivalent wrapper
//      metric that is forced onto the generic virtual-call path.
//   4. The batched SIMD distance kernels: sequential DBSCAN on the scaled
//      dataset per index, per-point reference scan (the pre-batching
//      loop) vs blocked kernels on the CPU's detected tier (labels
//      verified bit-identical between the two).
//
// With --out FILE the results are also emitted as machine-readable JSON
// (schema "dbdc-parallel-bench-v2"); --quick shrinks datasets and the
// thread ladder for CI smoke runs. Absolute times are hardware-dependent;
// speedups above 1x require actual hardware parallelism (more than one
// core), so on constrained machines the JSON is still schema-valid but
// thread speedups hover around 1x ("degraded_host" flags exactly that).
// The simd section is single-core work, so it is meaningful even there.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/dbscan.h"
#include "common/simd_kernels.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dbdc.h"
#include "core/relabel.h"
#include "data/generators.h"
#include "index/index_factory.h"

namespace {

using dbdc::bench::Fmt;
using dbdc::bench::Table;

struct ScalingRow {
  std::string phase;
  std::string dataset;
  std::size_t n = 0;
  std::string index;
  int threads = 1;
  double seconds = 0.0;
  double speedup_vs_1t = 1.0;
};

struct FastPathRow {
  std::string dataset;
  std::size_t n = 0;
  std::string index;
  double generic_seconds = 0.0;
  double fast_seconds = 0.0;
  double speedup = 1.0;
};

struct SimdRow {
  std::string dataset;
  std::size_t n = 0;
  std::string index;
  std::string tier;  // The batched run's dispatch tier.
  double scalar_seconds = 0.0;   // Per-point reference scan (pre-batching).
  double batched_seconds = 0.0;  // Blocked kernels on the detected tier.
  double speedup = 1.0;
};

/// Forwards to Euclidean() but is a distinct Metric instance, so
/// IsEuclideanMetric() is false and every index stays on the generic
/// virtual-call path. This isolates the fast-path win.
class WrappedEuclidean final : public dbdc::Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override {
    return dbdc::Euclidean().Distance(a, b);
  }
  double MinDistanceToBox(std::span<const double> p,
                          std::span<const double> lo,
                          std::span<const double> hi) const override {
    return dbdc::Euclidean().MinDistanceToBox(p, lo, hi);
  }
  std::string_view name() const override { return "euclidean_wrapped"; }
};

}  // namespace

int main(int argc, char** argv) {
  using dbdc::bench::JsonEscape;
  using dbdc::bench::MedianSeconds;
  dbdc::bench::HarnessOptions options;
  if (!dbdc::bench::ParseHarnessOptions(argc, argv, &options)) return 2;
  const dbdc::bench::HarnessMetrics metrics;
  const bool quick = options.quick;
  const std::string& out_path = options.out_path;

  const int repeats = quick ? 1 : 3;
  const std::vector<int> thread_ladder =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<dbdc::IndexType> index_types = {
      dbdc::IndexType::kGrid, dbdc::IndexType::kKdTree,
      dbdc::IndexType::kRStarTreeBulk};

  std::vector<dbdc::SyntheticDataset> datasets;
  datasets.push_back(dbdc::MakeTestDatasetC());
  datasets.push_back(dbdc::MakeScaledDataset(quick ? 4000 : 20000));

  std::vector<ScalingRow> scaling;
  std::vector<FastPathRow> fastpath;
  std::vector<SimdRow> simd_rows;

  // --- Phase 1: parallel DBSCAN scaling -------------------------------
  Table dbscan_table("Parallel DBSCAN scaling (threads x index x dataset)");
  dbscan_table.SetHeader(
      {"dataset", "n", "index", "threads", "seconds", "speedup"});
  for (const dbdc::SyntheticDataset& ds : datasets) {
    for (const dbdc::IndexType index_type : index_types) {
      const std::unique_ptr<dbdc::NeighborIndex> index = dbdc::CreateIndex(
          index_type, ds.data, dbdc::Euclidean(), ds.suggested_params.eps);
      dbdc::DbscanParams params = ds.suggested_params;
      const dbdc::Clustering reference = dbdc::RunDbscan(*index, params);
      double seconds_1t = 0.0;
      for (const int threads : thread_ladder) {
        params.threads = threads;
        std::vector<double> samples;
        for (int r = 0; r < repeats; ++r) {
          dbdc::Timer timer;
          const dbdc::Clustering clustering = dbdc::RunDbscan(*index, params);
          samples.push_back(timer.Seconds());
          if (clustering.labels != reference.labels) {
            std::fprintf(stderr,
                         "FATAL: parallel DBSCAN labels diverge "
                         "(dataset=%s index=%s threads=%d)\n",
                         ds.name.c_str(),
                         std::string(dbdc::IndexTypeName(index_type)).c_str(),
                         threads);
            return 1;
          }
        }
        const double seconds = MedianSeconds(samples);
        if (threads == 1) seconds_1t = seconds;
        ScalingRow row;
        row.phase = "dbscan";
        row.dataset = ds.name;
        row.n = ds.data.size();
        row.index = std::string(dbdc::IndexTypeName(index_type));
        row.threads = threads;
        row.seconds = seconds;
        row.speedup_vs_1t = seconds > 0.0 ? seconds_1t / seconds : 1.0;
        scaling.push_back(row);
        dbscan_table.AddRow({row.dataset, Fmt("%zu", row.n), row.index,
                             Fmt("%d", row.threads), Fmt("%.4f", row.seconds),
                             Fmt("%.2fx", row.speedup_vs_1t)});
      }
    }
  }
  dbscan_table.Print();

  // --- Phase 2: parallel relabel scaling ------------------------------
  Table relabel_table("Parallel relabel scaling (shared RelabelContext)");
  relabel_table.SetHeader({"dataset", "n", "threads", "seconds", "speedup"});
  for (const dbdc::SyntheticDataset& ds : datasets) {
    const dbdc::DbdcConfig config = dbdc::bench::MakeDbdcConfig(ds, 4);
    const dbdc::DbdcResult run =
        dbdc::RunDbdc(ds.data, dbdc::Euclidean(), config);
    if (run.global_model.NumRepresentatives() == 0) continue;
    const dbdc::RelabelContext context(run.global_model, dbdc::Euclidean());
    const std::vector<dbdc::ClusterId> reference =
        dbdc::RelabelSite(ds.data, context, dbdc::Euclidean(), 1);
    double seconds_1t = 0.0;
    for (const int threads : thread_ladder) {
      std::vector<double> samples;
      for (int r = 0; r < repeats; ++r) {
        dbdc::Timer timer;
        const std::vector<dbdc::ClusterId> labels =
            dbdc::RelabelSite(ds.data, context, dbdc::Euclidean(), threads);
        samples.push_back(timer.Seconds());
        if (labels != reference) {
          std::fprintf(stderr,
                       "FATAL: parallel relabel labels diverge "
                       "(dataset=%s threads=%d)\n",
                       ds.name.c_str(), threads);
          return 1;
        }
      }
      const double seconds = MedianSeconds(samples);
      if (threads == 1) seconds_1t = seconds;
      ScalingRow row;
      row.phase = "relabel";
      row.dataset = ds.name;
      row.n = ds.data.size();
      row.index = "grid";
      row.threads = threads;
      row.seconds = seconds;
      row.speedup_vs_1t = seconds > 0.0 ? seconds_1t / seconds : 1.0;
      scaling.push_back(row);
      relabel_table.AddRow({row.dataset, Fmt("%zu", row.n),
                            Fmt("%d", row.threads), Fmt("%.4f", row.seconds),
                            Fmt("%.2fx", row.speedup_vs_1t)});
    }
  }
  relabel_table.Print();

  // --- Phase 3: distance fast path vs generic metric ------------------
  Table fast_table("Euclidean fast path vs generic virtual metric");
  fast_table.SetHeader(
      {"dataset", "n", "index", "generic_s", "fast_s", "speedup"});
  const WrappedEuclidean wrapped;
  for (const dbdc::SyntheticDataset& ds : datasets) {
    for (const dbdc::IndexType index_type : index_types) {
      dbdc::DbscanParams params = ds.suggested_params;
      const std::unique_ptr<dbdc::NeighborIndex> fast_index =
          dbdc::CreateIndex(index_type, ds.data, dbdc::Euclidean(),
                            params.eps);
      const std::unique_ptr<dbdc::NeighborIndex> generic_index =
          dbdc::CreateIndex(index_type, ds.data, wrapped, params.eps);
      std::vector<double> fast_samples;
      std::vector<double> generic_samples;
      dbdc::Clustering fast_result;
      dbdc::Clustering generic_result;
      for (int r = 0; r < repeats; ++r) {
        dbdc::Timer fast_timer;
        fast_result = dbdc::RunDbscan(*fast_index, params);
        fast_samples.push_back(fast_timer.Seconds());
        dbdc::Timer generic_timer;
        generic_result = dbdc::RunDbscan(*generic_index, params);
        generic_samples.push_back(generic_timer.Seconds());
      }
      if (fast_result.labels != generic_result.labels) {
        std::fprintf(stderr,
                     "FATAL: fast-path labels diverge from generic metric "
                     "(dataset=%s index=%s)\n",
                     ds.name.c_str(),
                     std::string(dbdc::IndexTypeName(index_type)).c_str());
        return 1;
      }
      FastPathRow row;
      row.dataset = ds.name;
      row.n = ds.data.size();
      row.index = std::string(dbdc::IndexTypeName(index_type));
      row.generic_seconds = MedianSeconds(generic_samples);
      row.fast_seconds = MedianSeconds(fast_samples);
      row.speedup = row.fast_seconds > 0.0
                        ? row.generic_seconds / row.fast_seconds
                        : 1.0;
      fastpath.push_back(row);
      fast_table.AddRow({row.dataset, Fmt("%zu", row.n), row.index,
                         Fmt("%.4f", row.generic_seconds),
                         Fmt("%.4f", row.fast_seconds),
                         Fmt("%.2fx", row.speedup)});
    }
  }
  fast_table.Print();

  // --- Phase 4: batched SIMD kernels vs per-point scalar scan ---------
  // Sequential (1-thread) DBSCAN on the scaled dataset: the n=20k sweep
  // the 1-core bench host can still measure meaningfully. The scalar leg
  // is the reference scan — the per-point loop the batched kernels
  // replaced — so the speedup is before-vs-after for the subsystem
  // (data layout + blocking + vector tier), not tier-vs-tier. Labels
  // must be bit-identical between the legs — that is the contract.
  const dbdc::simd::Tier detected = dbdc::simd::DetectedTier();
  Table simd_table(
      Fmt("Batched SIMD kernels (detected tier: %s) vs per-point scalar "
          "scan, sequential DBSCAN",
          dbdc::simd::TierName(detected).data()));
  simd_table.SetHeader(
      {"dataset", "n", "index", "tier", "scalar_s", "batched_s", "speedup"});
  const std::vector<dbdc::IndexType> simd_index_types = {
      dbdc::IndexType::kLinearScan, dbdc::IndexType::kGrid,
      dbdc::IndexType::kKdTree, dbdc::IndexType::kRStarTreeBulk};
  const dbdc::SyntheticDataset& scaled = datasets.back();
  for (const dbdc::IndexType index_type : simd_index_types) {
    dbdc::DbscanParams params = scaled.suggested_params;
    const std::unique_ptr<dbdc::NeighborIndex> index = dbdc::CreateIndex(
        index_type, scaled.data, dbdc::Euclidean(), params.eps);
    std::vector<double> scalar_samples;
    std::vector<double> batched_samples;
    dbdc::Clustering scalar_result;
    dbdc::Clustering batched_result;
    for (int r = 0; r < repeats; ++r) {
      dbdc::simd::SetReferenceScan(true);
      dbdc::Timer scalar_timer;
      scalar_result = dbdc::RunDbscan(*index, params);
      scalar_samples.push_back(scalar_timer.Seconds());
      dbdc::simd::SetReferenceScan(false);
      dbdc::Timer batched_timer;
      batched_result = dbdc::RunDbscan(*index, params);
      batched_samples.push_back(batched_timer.Seconds());
    }
    if (scalar_result.labels != batched_result.labels ||
        scalar_result.is_core != batched_result.is_core) {
      std::fprintf(stderr,
                   "FATAL: batched-kernel labels diverge from the per-point "
                   "reference scan (dataset=%s index=%s tier=%s)\n",
                   scaled.name.c_str(),
                   std::string(dbdc::IndexTypeName(index_type)).c_str(),
                   dbdc::simd::TierName(detected).data());
      return 1;
    }
    SimdRow row;
    row.dataset = scaled.name;
    row.n = scaled.data.size();
    row.index = std::string(dbdc::IndexTypeName(index_type));
    row.tier = std::string(dbdc::simd::TierName(detected));
    row.scalar_seconds = MedianSeconds(scalar_samples);
    row.batched_seconds = MedianSeconds(batched_samples);
    row.speedup = row.batched_seconds > 0.0
                      ? row.scalar_seconds / row.batched_seconds
                      : 1.0;
    simd_rows.push_back(row);
    simd_table.AddRow({row.dataset, Fmt("%zu", row.n), row.index, row.tier,
                       Fmt("%.4f", row.scalar_seconds),
                       Fmt("%.4f", row.batched_seconds),
                       Fmt("%.2fx", row.speedup)});
  }
  simd_table.Print();

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"dbdc-parallel-bench-v2\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
        << ",\n";
    // A 1-thread host cannot measure thread scaling: every speedup_vs_1t
    // is noise around (or below) 1x. Consumers must not read the scaling
    // section of a degraded-host JSON as a regression.
    out << "  \"degraded_host\": "
        << (std::thread::hardware_concurrency() <= 1 ? "true" : "false")
        << ",\n";
    out << "  \"detected_tier\": \""
        << JsonEscape(std::string(dbdc::simd::TierName(detected))) << "\",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const ScalingRow& r = scaling[i];
      out << "    {\"phase\": \"" << JsonEscape(r.phase) << "\", \"dataset\": \""
          << JsonEscape(r.dataset) << "\", \"n\": " << r.n << ", \"index\": \""
          << JsonEscape(r.index) << "\", \"threads\": " << r.threads
          << ", \"seconds\": " << Fmt("%.6f", r.seconds)
          << ", \"speedup_vs_1t\": " << Fmt("%.4f", r.speedup_vs_1t) << "}"
          << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"fastpath\": [\n";
    for (std::size_t i = 0; i < fastpath.size(); ++i) {
      const FastPathRow& r = fastpath[i];
      out << "    {\"dataset\": \"" << JsonEscape(r.dataset)
          << "\", \"n\": " << r.n << ", \"index\": \"" << JsonEscape(r.index)
          << "\", \"generic_seconds\": " << Fmt("%.6f", r.generic_seconds)
          << ", \"fast_seconds\": " << Fmt("%.6f", r.fast_seconds)
          << ", \"speedup\": " << Fmt("%.4f", r.speedup) << "}"
          << (i + 1 < fastpath.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"simd\": [\n";
    for (std::size_t i = 0; i < simd_rows.size(); ++i) {
      const SimdRow& r = simd_rows[i];
      out << "    {\"dataset\": \"" << JsonEscape(r.dataset)
          << "\", \"n\": " << r.n << ", \"index\": \"" << JsonEscape(r.index)
          << "\", \"tier\": \"" << JsonEscape(r.tier)
          << "\", \"scalar_seconds\": " << Fmt("%.6f", r.scalar_seconds)
          << ", \"batched_seconds\": " << Fmt("%.6f", r.batched_seconds)
          << ", \"speedup\": " << Fmt("%.4f", r.speedup) << "}"
          << (i + 1 < simd_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"metrics\": " << metrics.Json() << "\n";
    out << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
