// Compliant twin of no_handrolled_distance_bad.cc: the candidate run is
// scored by one call into the batched kernels, which own the per-point
// loop (and its scalar tail) under the tier bit-identity contract.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbdc::simd {
struct KernelStats;
void FilterRowsSquaredEuclidean(const double* query, const double* rows,
                                std::size_t n, std::size_t dim,
                                double eps_sq, std::int32_t first_id,
                                std::vector<std::int32_t>* out,
                                KernelStats* stats);
}  // namespace dbdc::simd

void ScoreCell(const double* query, const double* rows, std::size_t n,
               std::size_t dim, double eps_sq,
               std::vector<std::int32_t>* out,
               dbdc::simd::KernelStats* stats) {
  dbdc::simd::FilterRowsSquaredEuclidean(query, rows, n, dim, eps_sq,
                                         /*first_id=*/0, out, stats);
}
