#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/dbdc.h"
#include "distrib/network.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "eval/external_indices.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

// ---------------------------------------------------------------------------
// Site / Server over serialized bytes.

TEST(SiteServerTest, EndToEndOverBytes) {
  const SyntheticDataset synth = MakeTestDatasetC(5);
  // Split by id parity into two sites.
  Dataset d0(2), d1(2);
  std::vector<PointId> ids0, ids1;
  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    if (p % 2 == 0) {
      d0.Add(synth.data.point(p));
      ids0.push_back(p);
    } else {
      d1.Add(synth.data.point(p));
      ids1.push_back(p);
    }
  }
  Site site0(0, Euclidean(), std::move(d0), ids0);
  Site site1(1, Euclidean(), std::move(d1), ids1);
  SiteConfig config;
  config.dbscan = synth.suggested_params;
  site0.RunLocalPipeline(config);
  site1.RunLocalPipeline(config);
  EXPECT_GT(site0.local_model().representatives.size(), 0u);

  Server server(Euclidean(), GlobalModelParams{});
  ASSERT_EQ(server.AddLocalModelBytes(site0.EncodeLocalModelBytes()),
            DecodeStatus::kOk);
  ASSERT_EQ(server.AddLocalModelBytes(site1.EncodeLocalModelBytes()),
            DecodeStatus::kOk);
  EXPECT_EQ(server.num_local_models(), 2u);
  server.BuildGlobal();
  // 3 well-separated clusters must survive the distribution.
  EXPECT_EQ(server.global_model().num_global_clusters, 3);

  const std::vector<std::uint8_t> bytes = server.EncodeGlobalModelBytes();
  ASSERT_EQ(site0.ApplyGlobalModelBytes(bytes), DecodeStatus::kOk);
  ASSERT_EQ(site1.ApplyGlobalModelBytes(bytes), DecodeStatus::kOk);
  EXPECT_EQ(site0.global_labels().size(), site0.data().size());

  // Corrupt payloads are rejected with a diagnostic status.
  std::vector<std::uint8_t> bad = bytes;
  bad.resize(bad.size() / 2);
  EXPECT_NE(site0.ApplyGlobalModelBytes(bad), DecodeStatus::kOk);
  EXPECT_EQ(server.AddLocalModelBytes(bad), DecodeStatus::kBadMagic);
}

TEST(SiteServerTest, IncrementalModelArrivalMatchesBatch) {
  // The server can rebuild the global model after each arriving local
  // model; the final result equals the all-at-once build.
  const SyntheticDataset synth = MakeTestDatasetC(6);
  std::vector<Site> sites;
  const int k = 3;
  std::vector<Dataset> datas(k, Dataset(2));
  std::vector<std::vector<PointId>> idss(k);
  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    datas[p % k].Add(synth.data.point(p));
    idss[p % k].push_back(p);
  }
  SiteConfig config;
  config.dbscan = synth.suggested_params;
  Server incremental(Euclidean(), GlobalModelParams{});
  Server batch(Euclidean(), GlobalModelParams{});
  for (int s = 0; s < k; ++s) {
    Site site(s, Euclidean(), std::move(datas[s]), idss[s]);
    site.RunLocalPipeline(config);
    const auto bytes = site.EncodeLocalModelBytes();
    ASSERT_EQ(incremental.AddLocalModelBytes(bytes), DecodeStatus::kOk);
    incremental.BuildGlobal();  // Rebuild after every arrival.
    ASSERT_EQ(batch.AddLocalModelBytes(bytes), DecodeStatus::kOk);
  }
  batch.BuildGlobal();
  EXPECT_EQ(incremental.global_model().num_global_clusters,
            batch.global_model().num_global_clusters);
  EXPECT_EQ(incremental.global_model().rep_global_cluster,
            batch.global_model().rep_global_cluster);
}

// ---------------------------------------------------------------------------
// Full DBDC runs.

using DbdcCase = std::tuple<LocalModelType, int>;  // (model, sites)

class DbdcQualityTest : public ::testing::TestWithParam<DbdcCase> {};

TEST_P(DbdcQualityTest, HighQualityVersusCentralClustering) {
  const auto [model_type, num_sites] = GetParam();
  const SyntheticDataset synth = MakeTestDatasetA(8);

  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  ASSERT_GT(central.num_clusters, 1);

  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.model_type = model_type;
  config.num_sites = num_sites;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);

  const double q2 = QualityP2(result.labels, central.labels);
  EXPECT_GT(q2, 0.80) << "P^II too low";
  const double q1 = QualityP1(result.labels, central.labels,
                              synth.suggested_params.min_pts);
  EXPECT_GT(q1, 0.90) << "P^I too low";
  // Cross-check with a standard index.
  EXPECT_GT(AdjustedRandIndex(result.labels, central.labels), 0.75);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSites, DbdcQualityTest,
    ::testing::Combine(::testing::Values(LocalModelType::kScor,
                                         LocalModelType::kKMeans),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return std::string(LocalModelTypeName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "sites";
    });

TEST(DbdcTest, DeterministicGivenSeed) {
  const SyntheticDataset synth = MakeTestDatasetC(10);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.seed = 77;
  const DbdcResult a = RunDbdc(synth.data, Euclidean(), config);
  const DbdcResult b = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.num_representatives, b.num_representatives);
}

TEST(DbdcTest, TransmissionIsSmallFractionOfRawData) {
  const SyntheticDataset synth = MakeTestDatasetA(12);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  SimulatedNetwork network;
  const DbdcResult result =
      RunDbdc(synth.data, Euclidean(), config, &network);
  const std::uint64_t raw = RawDatasetWireSize(synth.data.size(), 2);
  EXPECT_LT(result.bytes_uplink, raw / 2)
      << "local models should be far smaller than the raw data";
  EXPECT_GT(result.num_representatives, 0u);
  EXPECT_LT(result.num_representatives, synth.data.size() / 2);
  EXPECT_EQ(network.BytesUplink(), result.bytes_uplink);
  // Downlink: the global model goes to every site.
  EXPECT_EQ(network.Inbox(0).size(), 1u);
}

TEST(DbdcTest, DefaultEpsGlobalIsCloseToTwiceEpsLocal) {
  // Sec. 6/9: the default (max ε_R) is "generally close to 2·Eps_local".
  const SyntheticDataset synth = MakeTestDatasetA(13);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_GT(result.eps_global_used, synth.suggested_params.eps);
  EXPECT_LE(result.eps_global_used, 2.0 * synth.suggested_params.eps + 1e-9);
  EXPECT_GT(result.eps_global_used, 1.8 * synth.suggested_params.eps);
}

TEST(DbdcTest, SingleSiteDegeneratesGracefully) {
  const SyntheticDataset synth = MakeTestDatasetC(14);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 1;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  // One site = the whole clustering is local; quality should be near 1.
  EXPECT_GT(QualityP2(result.labels, central.labels), 0.95);
  EXPECT_EQ(result.num_global_clusters, central.num_clusters);
}

TEST(DbdcTest, WorksWithEveryIndexType) {
  const SyntheticDataset synth = MakeTestDatasetC(15);
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kLinearScan).clustering;
  for (const IndexType type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTree, IndexType::kMTree}) {
    DbdcConfig config;
    config.local_dbscan = synth.suggested_params;
    config.index_type = type;
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    EXPECT_GT(QualityP2(result.labels, central.labels), 0.9)
        << IndexTypeName(type);
  }
}

TEST(DbdcTest, SpatialSkewStillRecoversGlobalClusters) {
  // With slab partitioning each site only sees part of each cluster's
  // extent; the global merge step must reunite the halves.
  const SyntheticDataset synth = MakeTestDatasetC(16);
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  const SpatialSlabPartitioner slab(0);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.partitioner = &slab;
  config.num_sites = 4;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_GT(QualityP2(result.labels, central.labels), 0.8);
}

TEST(DbdcTest, PaperCostModelFields) {
  const SyntheticDataset synth = MakeTestDatasetC(17);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_GE(result.sum_local_seconds, result.max_local_seconds);
  EXPECT_DOUBLE_EQ(result.OverallSeconds(),
                   result.max_local_seconds + result.global_seconds);
  EXPECT_EQ(result.site_sizes.size(), 4u);
  std::size_t total = 0;
  for (const std::size_t s : result.site_sizes) total += s;
  EXPECT_EQ(total, synth.data.size());
}

}  // namespace
}  // namespace dbdc
