#ifndef DBDC_CORE_STREAMING_SITE_H_
#define DBDC_CORE_STREAMING_SITE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/incremental_dbscan.h"
#include "core/local_model.h"
#include "core/model_codec.h"
#include "core/relabel.h"

namespace dbdc {

/// When a streaming site re-derives and re-transmits its local model.
/// The paper's motivation for DBSCAN (Sec. 4): with the incremental
/// version "only if the local clustering changes considerably, we have
/// to transmit a new local model to the central site".
struct RefreshPolicy {
  /// Refresh when the number of clusters changed by at least this many
  /// since the last transmitted model.
  int min_cluster_delta = 1;
  /// ... or when the insertions/deletions since the last transmitted
  /// model amount to at least this fraction of the active points
  /// (0 disables the criterion).
  double updated_fraction = 0.0;
  /// Never refresh more often than every this many updates.
  std::size_t min_updates_between = 0;
};

/// A client site whose data arrives (and expires) as a stream.
///
/// Maintains its clustering with IncrementalDbscan and decides via the
/// RefreshPolicy when the local model is stale enough to justify a new
/// transmission — the DBDC deployment mode the paper sketches but does
/// not implement. Model extraction itself re-runs the (cheap, local)
/// specific-core-point pass over the current points, since the
/// representative set depends on the discovery order of a DBSCAN run.
class StreamingSite {
 public:
  StreamingSite(int site_id, const Metric& metric,
                const DbscanParams& params, int dim,
                LocalModelType model_type, const RefreshPolicy& policy);

  /// Adds an observation. Returns its id.
  PointId Insert(std::span<const double> coords);
  /// Expires an observation.
  void Erase(PointId id);

  /// Whether the policy says the last transmitted model is stale.
  bool ModelNeedsRefresh() const;

  /// Re-derives the local model from the current points and marks it
  /// transmitted (resets the staleness tracking).
  const LocalModel& RefreshModel();

  /// The last refreshed model (empty before the first RefreshModel()).
  const LocalModel& local_model() const { return model_; }

  /// The last refreshed model, serialized with the v3 codec for
  /// transmission over a Transport (the continuous-mode uplink).
  std::vector<std::uint8_t> EncodeLocalModelBytes() const;

  /// Relabels the *active* points against a received global model;
  /// returns (active point id, global label) pairs.
  std::vector<std::pair<PointId, ClusterId>> ApplyGlobalModel(
      const GlobalModel& global) const;

  /// Broadcast-receiving variant: decodes `bytes` with the v3 codec and,
  /// on kOk, relabels the active points into `*labeled` (as
  /// ApplyGlobalModel). On anything but kOk, `*labeled` is untouched and
  /// the status says why the payload was rejected.
  DecodeStatus ApplyGlobalModelBytes(
      std::span<const std::uint8_t> bytes,
      std::vector<std::pair<PointId, ClusterId>>* labeled) const;

  const IncrementalDbscan& clustering() const { return clustering_; }
  int site_id() const { return site_id_; }
  std::size_t updates_since_refresh() const {
    return updates_since_refresh_;
  }
  int refresh_count() const { return refresh_count_; }

 private:
  /// Builds the compact dataset of active points + the id mapping.
  void ActiveSnapshot(Dataset* active, std::vector<PointId>* ids) const;

  int site_id_;
  const Metric* metric_;
  DbscanParams params_;
  LocalModelType model_type_;
  RefreshPolicy policy_;
  IncrementalDbscan clustering_;
  LocalModel model_;
  // Staleness tracking relative to the last refresh.
  int clusters_at_refresh_ = 0;
  std::size_t updates_since_refresh_ = 0;
  int refresh_count_ = 0;
};

}  // namespace dbdc

#endif  // DBDC_CORE_STREAMING_SITE_H_
