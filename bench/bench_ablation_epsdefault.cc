// Ablation (DESIGN.md): the paper proposes max{ε_R} as the default
// Eps_global and argues it is "generally close to 2*Eps_local". This
// bench quantifies that claim: it compares the default against fixed
// multiples of Eps_local on all three test data sets, reporting the
// value the default resolves to and the resulting quality.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "eval/quality.h"

namespace dbdc {
namespace {

constexpr int kSites = 4;

struct Row {
  std::string dataset;
  std::string setting;
  double eps_global_used = 0.0;
  double factor_of_local = 0.0;
  double p2 = 0.0;
  int clusters = 0;
};

std::vector<Row>& Rows() {
  static auto* rows = new std::vector<Row>();
  return *rows;
}

SyntheticDataset MakeByIndex(int idx) {
  switch (idx) {
    case 0:
      return MakeTestDatasetA();
    case 1:
      return MakeTestDatasetB();
    default:
      return MakeTestDatasetC();
  }
}

// range(0): dataset index; range(1): eps_global in tenths of Eps_local,
// 0 = the paper's default (max ε_R).
void BM_EpsDefault(benchmark::State& state) {
  const SyntheticDataset synth = MakeByIndex(static_cast<int>(state.range(0)));
  const double factor = static_cast<double>(state.range(1)) / 10.0;
  const Clustering central = RunCentralDbscan(
      synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
  DbdcConfig config = bench::MakeDbdcConfig(synth, kSites);
  config.eps_global = factor * synth.suggested_params.eps;  // 0 = default.
  for (auto _ : state) {
    const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
    Row row;
    row.dataset = synth.name;
    row.setting = factor == 0.0 ? "default (max eps_R)"
                                : bench::Fmt("%.1f * Eps_local", factor);
    row.eps_global_used = result.eps_global_used;
    row.factor_of_local = result.eps_global_used / synth.suggested_params.eps;
    row.p2 = QualityP2(result.labels, central.labels);
    row.clusters = result.num_global_clusters;
    Rows().push_back(row);
    state.counters["P2"] = row.p2;
    state.counters["eps_global"] = row.eps_global_used;
  }
}

void RegisterAll() {
  for (const int idx : {0, 1, 2}) {
    for (const int f : {0, 10, 15, 20, 30}) {
      benchmark::RegisterBenchmark("eps_global_setting", BM_EpsDefault)
          ->Args({idx, f})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  bench::Table table(
      "Ablation — Eps_global default (max eps_R) vs fixed multiples of "
      "Eps_local (REP_Scor, 4 sites)");
  table.SetHeader({"data set", "setting", "Eps_global used",
                   "as multiple of Eps_local", "Q_DBDC (P^II) [%]",
                   "global clusters"});
  for (const Row& row : Rows()) {
    table.AddRow({row.dataset, row.setting,
                  bench::Fmt("%.3f", row.eps_global_used),
                  bench::Fmt("%.2f", row.factor_of_local),
                  bench::Fmt("%.1f", 100.0 * row.p2),
                  bench::Fmt("%d", row.clusters)});
  }
  table.Print();
  std::printf("Paper shape check: the default resolves close to "
              "2*Eps_local and its quality matches the best fixed "
              "setting.\n");
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
