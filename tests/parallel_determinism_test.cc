// Determinism suite for the intra-site parallel execution layer: every
// parallel entry point (two-phase DBSCAN, relabel, quality, silhouette,
// the parallel-DBSCAN baseline and the full DBDC driver) must produce
// results *identical* to its sequential run — for every index type, every
// metric, and every thread count, including the degenerate datasets.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baseline/parallel_dbscan.h"
#include "cluster/dbscan.h"
#include "common/thread_pool.h"
#include "core/dbdc.h"
#include "core/relabel.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "eval/silhouette.h"
#include "index/index_factory.h"

namespace dbdc {
namespace {

const std::vector<int> kThreadLadder = {1, 2, 8};

const std::vector<IndexType> kAllIndexTypes = {
    IndexType::kLinearScan, IndexType::kGrid,         IndexType::kKdTree,
    IndexType::kRStarTree,  IndexType::kRStarTreeBulk, IndexType::kMTree,
    IndexType::kVpTree};

struct NamedMetric {
  const char* name;
  const Metric* metric;
};

std::vector<NamedMetric> AllMetrics() {
  return {{"euclidean", &Euclidean()},
          {"manhattan", &Manhattan()},
          {"chebyshev", &Chebyshev()}};
}

void ExpectSameClustering(const Clustering& a, const Clustering& b,
                          const std::string& what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  EXPECT_EQ(a.is_core, b.is_core) << what;
  EXPECT_EQ(a.num_clusters, b.num_clusters) << what;
}

// --- ThreadPool primitives -------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int threads : kThreadLadder) {
    ThreadPool pool(threads);
    std::vector<int> hits(1000, 0);
    pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, ParallelChunksPartitionIsContiguousAndStable) {
  for (const int threads : kThreadLadder) {
    ThreadPool pool(threads);
    for (const std::size_t n : {0ul, 1ul, 7ul, 1000ul}) {
      std::vector<std::pair<std::size_t, std::size_t>> first;
      std::vector<std::pair<std::size_t, std::size_t>> second;
      std::mutex mu;
      pool.ParallelChunks(n, [&](std::size_t chunk, std::size_t begin,
                                 std::size_t end) {
        const std::lock_guard<std::mutex> lock(mu);
        if (first.size() <= chunk) first.resize(chunk + 1);
        first[chunk] = {begin, end};
      });
      pool.ParallelChunks(n, [&](std::size_t chunk, std::size_t begin,
                                 std::size_t end) {
        const std::lock_guard<std::mutex> lock(mu);
        if (second.size() <= chunk) second.resize(chunk + 1);
        second[chunk] = {begin, end};
      });
      // Same n => byte-identical chunking (phase A of the parallel DBSCAN
      // relies on this to stitch its CSR arrays).
      EXPECT_EQ(first, second);
      std::size_t covered = 0;
      for (std::size_t c = 0; c < first.size(); ++c) {
        EXPECT_EQ(first[c].first, covered);
        EXPECT_LE(first[c].first, first[c].second);
        covered = first[c].second;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ThreadPoolTest, ParallelReduceFoldsInChunkOrder) {
  for (const int threads : kThreadLadder) {
    ThreadPool pool(threads);
    // Floating-point sum: chunk-order folding makes the result identical
    // for every pool size (same partials, same fold order).
    const std::size_t n = 12345;
    const auto map = [](std::size_t begin, std::size_t end) {
      double sum = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        sum += 1.0 / (1.0 + static_cast<double>(i));
      }
      return sum;
    };
    const auto reduce = [](double a, double b) { return a + b; };
    const double expected = [&] {
      ThreadPool sequential(1);
      return sequential.ParallelReduce(n, 0.0, map, reduce);
    }();
    EXPECT_EQ(pool.ParallelReduce(n, 0.0, map, reduce), expected)
        << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1);
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
}

// --- Two-phase parallel DBSCAN ---------------------------------------

TEST(ParallelDbscanDeterminismTest, EveryIndexEveryMetricEveryThreadCount) {
  const SyntheticDataset ds = MakeTestDatasetC();
  for (const NamedMetric& nm : AllMetrics()) {
    for (const IndexType index_type : kAllIndexTypes) {
      const std::unique_ptr<NeighborIndex> index = CreateIndex(
          index_type, ds.data, *nm.metric, ds.suggested_params.eps);
      DbscanParams params = ds.suggested_params;
      params.threads = 1;
      const Clustering reference = RunDbscan(*index, params);
      for (const int threads : kThreadLadder) {
        params.threads = threads;
        const Clustering parallel = RunDbscan(*index, params);
        ExpectSameClustering(
            reference, parallel,
            std::string("metric=") + nm.name +
                " index=" + std::string(IndexTypeName(index_type)) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ParallelDbscanDeterminismTest, ObserverEventSequenceIsIdentical) {
  // The parallel path must replay the exact sequential control flow, so
  // the observer must see the same events in the same order.
  struct RecordingObserver : DbscanObserver {
    std::vector<std::pair<PointId, ClusterId>> events;
    void OnClusterStarted(ClusterId cluster) override {
      events.emplace_back(-1, -10 - cluster);
    }
    void OnCorePoint(PointId id, ClusterId cluster) override {
      events.emplace_back(id, cluster);
    }
  };
  const SyntheticDataset ds = MakeTestDatasetB();
  const std::unique_ptr<NeighborIndex> index = CreateIndex(
      IndexType::kGrid, ds.data, Euclidean(), ds.suggested_params.eps);
  DbscanParams params = ds.suggested_params;
  RecordingObserver sequential;
  RunDbscan(*index, params, &sequential);
  for (const int threads : {2, 8}) {
    params.threads = threads;
    RecordingObserver parallel;
    RunDbscan(*index, params, &parallel);
    EXPECT_EQ(parallel.events, sequential.events) << "threads=" << threads;
  }
}

TEST(ParallelDbscanDeterminismTest, EmptyDataset) {
  const Dataset empty(2);
  for (const int threads : kThreadLadder) {
    const std::unique_ptr<NeighborIndex> index =
        CreateIndex(IndexType::kGrid, empty, Euclidean(), 1.0);
    const Clustering c = RunDbscan(*index, {1.0, 3, threads});
    EXPECT_TRUE(c.labels.empty());
    EXPECT_EQ(c.num_clusters, 0);
  }
}

TEST(ParallelDbscanDeterminismTest, AllNoiseDataset) {
  // Points far apart with high min_pts: everything is noise; the core
  // graph is empty and phase B must still terminate correctly.
  Dataset data(2);
  for (int i = 0; i < 50; ++i) {
    data.Add(Point{static_cast<double>(100 * i), 0.0});
  }
  for (const int threads : kThreadLadder) {
    const std::unique_ptr<NeighborIndex> index =
        CreateIndex(IndexType::kKdTree, data, Euclidean(), 1.0);
    const Clustering c = RunDbscan(*index, {1.0, 3, threads});
    EXPECT_EQ(c.num_clusters, 0);
    for (const ClusterId label : c.labels) EXPECT_EQ(label, kNoise);
  }
}

TEST(ParallelDbscanDeterminismTest, ThreadsZeroUsesHardwareConcurrency) {
  const SyntheticDataset ds = MakeTestDatasetC();
  const std::unique_ptr<NeighborIndex> index = CreateIndex(
      IndexType::kGrid, ds.data, Euclidean(), ds.suggested_params.eps);
  DbscanParams params = ds.suggested_params;
  const Clustering reference = RunDbscan(*index, params);
  params.threads = 0;
  const Clustering parallel = RunDbscan(*index, params);
  ExpectSameClustering(reference, parallel, "threads=0");
}

// --- Distance fast path (squared Euclidean) ---------------------------

TEST(FastPathTest, WrappedEuclideanMatchesSingletonExactly) {
  // A metric that forwards to Euclidean() but is a different instance:
  // indices must keep it on the generic path, and the fast path must
  // produce the identical clustering.
  class Wrapped final : public Metric {
   public:
    double Distance(std::span<const double> a,
                    std::span<const double> b) const override {
      return Euclidean().Distance(a, b);
    }
    double MinDistanceToBox(std::span<const double> p,
                            std::span<const double> lo,
                            std::span<const double> hi) const override {
      return Euclidean().MinDistanceToBox(p, lo, hi);
    }
    std::string_view name() const override { return "wrapped"; }
  };
  const Wrapped wrapped;
  ASSERT_FALSE(IsEuclideanMetric(wrapped));
  ASSERT_TRUE(IsEuclideanMetric(Euclidean()));
  const SyntheticDataset ds = MakeTestDatasetC();
  for (const IndexType index_type :
       {IndexType::kLinearScan, IndexType::kGrid, IndexType::kKdTree,
        IndexType::kRStarTree, IndexType::kRStarTreeBulk}) {
    const std::unique_ptr<NeighborIndex> fast = CreateIndex(
        index_type, ds.data, Euclidean(), ds.suggested_params.eps);
    const std::unique_ptr<NeighborIndex> generic = CreateIndex(
        index_type, ds.data, wrapped, ds.suggested_params.eps);
    const Clustering a = RunDbscan(*fast, ds.suggested_params);
    const Clustering b = RunDbscan(*generic, ds.suggested_params);
    ExpectSameClustering(a, b, std::string(IndexTypeName(index_type)));
  }
}

// --- Relabel ----------------------------------------------------------

GlobalModel MakeTieGlobal() {
  // Two representatives exactly equidistant from the probe point below;
  // they carry different global clusters, so the (distance, rep id)
  // tie-break is observable.
  GlobalModel global;
  global.rep_points = Dataset(2);
  global.rep_points.Add(Point{-1.0, 0.0});  // rep 0, cluster 1.
  global.rep_points.Add(Point{1.0, 0.0});   // rep 1, cluster 0.
  global.rep_eps = {2.0, 2.0};
  global.rep_global_cluster = {1, 0};
  global.rep_site = {0, 1};
  global.rep_local_cluster = {0, 0};
  global.num_global_clusters = 2;
  global.eps_global_used = 1.0;
  return global;
}

TEST(RelabelDeterminismTest, ExactTieBreaksTowardLowerRepId) {
  const GlobalModel global = MakeTieGlobal();
  Dataset probe(2);
  probe.Add(Point{0.0, 0.0});  // Equidistant from both representatives.
  for (const int threads : kThreadLadder) {
    const std::vector<ClusterId> labels =
        RelabelSite(probe, global, Euclidean(), threads);
    ASSERT_EQ(labels.size(), 1u);
    // Rep 0 wins the tie => cluster 1, regardless of thread count.
    EXPECT_EQ(labels[0], 1) << "threads=" << threads;
  }
}

TEST(RelabelDeterminismTest, SharedContextMatchesPrivateContext) {
  const SyntheticDataset ds = MakeTestDatasetA();
  DbdcConfig config;
  config.num_sites = 4;
  config.local_dbscan = ds.suggested_params;
  const DbdcResult run = RunDbdc(ds.data, Euclidean(), config);
  ASSERT_GT(run.global_model.NumRepresentatives(), 0u);
  const RelabelContext context(run.global_model, Euclidean());
  const std::vector<ClusterId> reference =
      RelabelSite(ds.data, run.global_model, Euclidean(), 1);
  for (const int threads : kThreadLadder) {
    EXPECT_EQ(RelabelSite(ds.data, context, Euclidean(), threads), reference)
        << "shared context, threads=" << threads;
    EXPECT_EQ(RelabelSite(ds.data, run.global_model, Euclidean(), threads),
              reference)
        << "private context, threads=" << threads;
  }
}

TEST(RelabelDeterminismTest, EmptySiteData) {
  const GlobalModel global = MakeTieGlobal();
  const Dataset empty(2);
  for (const int threads : kThreadLadder) {
    EXPECT_TRUE(RelabelSite(empty, global, Euclidean(), threads).empty());
  }
}

// --- Evaluation -------------------------------------------------------

TEST(EvalDeterminismTest, QualityIdenticalForEveryThreadCount) {
  const SyntheticDataset ds = MakeTestDatasetB();
  DbdcConfig config;
  config.num_sites = 3;
  config.local_dbscan = ds.suggested_params;
  const DbdcResult run = RunDbdc(ds.data, Euclidean(), config);
  const Clustering central = RunCentralDbscan(ds.data, Euclidean(),
                                              ds.suggested_params,
                                              IndexType::kGrid).clustering;
  const double p1 = QualityP1(run.labels, central.labels,
                              ds.suggested_params.min_pts, 1);
  const double p2 = QualityP2(run.labels, central.labels, 1);
  const std::vector<double> o1 = ObjectQualityP1(
      run.labels, central.labels, ds.suggested_params.min_pts, 1);
  const std::vector<double> o2 =
      ObjectQualityP2(run.labels, central.labels, 1);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(QualityP1(run.labels, central.labels,
                        ds.suggested_params.min_pts, threads),
              p1);
    EXPECT_EQ(QualityP2(run.labels, central.labels, threads), p2);
    EXPECT_EQ(ObjectQualityP1(run.labels, central.labels,
                              ds.suggested_params.min_pts, threads),
              o1);
    EXPECT_EQ(ObjectQualityP2(run.labels, central.labels, threads), o2);
  }
}

TEST(EvalDeterminismTest, SilhouetteIdenticalForEveryThreadCount) {
  const SyntheticDataset ds = MakeTestDatasetC();
  const Clustering central = RunCentralDbscan(ds.data, Euclidean(),
                                              ds.suggested_params,
                                              IndexType::kGrid).clustering;
  const double reference = SilhouetteCoefficient(
      ds.data, central.labels, Euclidean(), 500, 1, 1);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(SilhouetteCoefficient(ds.data, central.labels, Euclidean(),
                                    500, 1, threads),
              reference)
        << "threads=" << threads;
  }
}

// --- Baseline + full driver ------------------------------------------

TEST(BaselineDeterminismTest, PooledWorkersMatchSequentialExecution) {
  const SyntheticDataset ds = MakeTestDatasetC();
  ParallelDbscanConfig config;
  config.dbscan = ds.suggested_params;
  config.num_workers = 4;
  config.num_threads = 1;
  const ParallelDbscanResult sequential =
      RunParallelDbscan(ds.data, Euclidean(), config);
  for (const int threads : {2, 8, 0}) {
    config.num_threads = threads;
    const ParallelDbscanResult pooled =
        RunParallelDbscan(ds.data, Euclidean(), config);
    ExpectSameClustering(sequential.clustering, pooled.clustering,
                         "num_threads=" + std::to_string(threads));
    EXPECT_EQ(pooled.total_halo_points, sequential.total_halo_points);
    EXPECT_EQ(pooled.bytes_halo, sequential.bytes_halo);
    EXPECT_EQ(pooled.bytes_merge, sequential.bytes_merge);
  }
}

TEST(DbdcDriverDeterminismTest, NumThreadsDoesNotChangeTheResult) {
  const SyntheticDataset ds = MakeTestDatasetA();
  DbdcConfig config;
  config.num_sites = 4;
  config.local_dbscan = ds.suggested_params;
  config.num_threads = 1;
  const DbdcResult reference = RunDbdc(ds.data, Euclidean(), config);
  for (const int threads : {2, 8}) {
    config.num_threads = threads;
    const DbdcResult run = RunDbdc(ds.data, Euclidean(), config);
    EXPECT_EQ(run.labels, reference.labels) << "num_threads=" << threads;
    EXPECT_EQ(run.num_global_clusters, reference.num_global_clusters);
    EXPECT_EQ(run.bytes_uplink, reference.bytes_uplink);
    EXPECT_EQ(run.bytes_downlink, reference.bytes_downlink);
  }
}

}  // namespace
}  // namespace dbdc
