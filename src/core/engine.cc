#include "core/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/simd_kernels.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbdc {
namespace {

GlobalModelParams MakeGlobalParams(const DbdcConfig& config) {
  GlobalModelParams params;
  params.eps_global = config.eps_global;
  params.min_pts_global = 2;
  params.index_type = config.index_type;
  params.approx = config.approx;
  params.min_weight_global = config.min_weight_global;
  params.num_threads = config.num_threads;
  return params;
}

void AccumulateProtocolCounters(const TransferOutcome& outcome,
                                DbdcResult* result) {
  result->protocol_retries += static_cast<std::uint64_t>(outcome.retries);
  result->frames_dropped += static_cast<std::uint64_t>(outcome.data_drops);
  result->frames_corrupted +=
      static_cast<std::uint64_t>(outcome.data_corruptions);
  result->acks_lost += static_cast<std::uint64_t>(outcome.ack_losses);
}

/// Unwraps the payload of a frame the channel reports as delivered
/// intact. The frame decoded once already (that is what "delivered"
/// means), so failure here is a programming error, not wire corruption.
std::vector<std::uint8_t> DeliveredPayload(const Transport& network,
                                           const TransferOutcome& outcome) {
  DBDC_CHECK(outcome.delivered);
  std::optional<Frame> frame =
      DecodeFrame(network.Message(outcome.delivered_index).payload);
  DBDC_CHECK(frame.has_value() && "delivered frame no longer decodes");
  return std::move(frame->payload);
}

}  // namespace

DbdcEngine::DbdcEngine(const Dataset& data, const Metric& metric,
                       const DbdcConfig& config, Transport* network)
    : data_(&data),
      metric_(&metric),
      config_(config),
      site_config_{config.local_dbscan, config.model_type,
                   config.kmeans,       config.index_type,
                   config.condense_eps, config.num_threads,
                   nullptr,             config.approx},
      server_(metric, MakeGlobalParams(config)) {
  DBDC_CHECK(config_.num_sites >= 1);
  switch (config_.topology.kind) {
    case TopologyKind::kFlat:
      topology_ = Topology::Flat(config_.num_sites);
      break;
    case TopologyKind::kTree:
      topology_ =
          Topology::KaryTree(config_.num_sites, config_.topology.fanout);
      break;
    case TopologyKind::kExplicit:
      DBDC_CHECK(config_.explicit_topology != nullptr &&
                 "kExplicit requires config.explicit_topology");
      topology_ = *config_.explicit_topology;
      DBDC_CHECK(topology_.num_sites() == config_.num_sites &&
                 "explicit topology must cover num_sites sites");
      DBDC_CHECK(topology_.Validate().empty() &&
                 "explicit topology failed Validate()");
      break;
  }
  ctx_.transport = network != nullptr ? network : &own_network_;
  if (config_.protocol.enabled) {
    ctx_.channel.emplace(ctx_.transport, config_.protocol);
  }
  if (config_.parallel_sites) {
    // One worker per site, as in a real deployment where every site is
    // its own machine (sites are fully independent, so the result is
    // identical to the sequential run for every pool size).
    ctx_.site_pool = std::make_unique<ThreadPool>(config_.num_sites);
  }
}

void DbdcEngine::SetLocalModelStrategy(const LocalModelStrategy* strategy) {
  DBDC_CHECK(next_stage_ <= 2 && "BuildLocalModel already ran");
  local_strategy_ = strategy;
}

void DbdcEngine::SetGlobalModelStrategy(const GlobalModelStrategy* strategy) {
  DBDC_CHECK(next_stage_ <= 4 && "MergeGlobal already ran");
  global_strategy_ = strategy;
}

template <typename Fn>
void DbdcEngine::ForEachSite(Fn&& fn) {
  if (ctx_.site_pool != nullptr) {
    ctx_.site_pool->ParallelFor(
        sites_.size(), [this, &fn](std::size_t i) { fn(sites_[i]); });
  } else {
    for (Site& site : sites_) fn(site);
  }
}

template <typename Fn>
void DbdcEngine::RunStage(StageId id, Fn&& body) {
  DBDC_CHECK(next_stage_ == static_cast<int>(id) &&
             "engine stages must run in pipeline order");
  ++next_stage_;
  const std::uint64_t uplink_before = ctx_.transport->BytesUplink();
  const std::uint64_t downlink_before = ctx_.transport->BytesDownlink();
  obs::ScopedSpan span(StageName(id), "stage");
  Timer timer;
  body();
  StageStats stats;
  stats.stage = id;
  stats.seconds = timer.Seconds();
  stats.bytes_uplink = ctx_.transport->BytesUplink() - uplink_before;
  stats.bytes_downlink = ctx_.transport->BytesDownlink() - downlink_before;
  span.AddArg("bytes_uplink", static_cast<std::int64_t>(stats.bytes_uplink));
  span.AddArg("bytes_downlink",
              static_cast<std::int64_t>(stats.bytes_downlink));
  ctx_.stages.push_back(stats);
}

void DbdcEngine::Partition() {
  RunStage(StageId::kPartition, [this] {
    if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
      metrics->SetGauge(obs::Gauge::kDatasetPoints,
                        static_cast<double>(data_->size()));
    }
    // In the real deployment the data is born at the sites; the
    // partitioner simulates that placement.
    const UniformRandomPartitioner default_partitioner;
    const Partitioner* partitioner = config_.partitioner != nullptr
                                         ? config_.partitioner
                                         : &default_partitioner;
    Rng rng(config_.seed);
    const std::vector<std::vector<PointId>> parts =
        partitioner->Partition(*data_, config_.num_sites, &rng);

    sites_.reserve(parts.size());
    for (int s = 0; s < config_.num_sites; ++s) {
      Dataset site_data(data_->dim());
      site_data.Reserve(parts[s].size());
      for (const PointId id : parts[s]) site_data.Add(data_->point(id));
      sites_.emplace_back(s, *metric_, std::move(site_data), parts[s]);
    }
  });
}

void DbdcEngine::LocalCluster() {
  RunStage(StageId::kLocalCluster, [this] {
    ForEachSite(
        [this](Site& site) { site.RunLocalClustering(site_config_); });
  });
}

void DbdcEngine::BuildLocalModel() {
  RunStage(StageId::kBuildLocalModel, [this] {
    site_config_.model_strategy = local_strategy_;
    ForEachSite([this](Site& site) { site.BuildModel(site_config_); });

    // The paper's per-phase cost aggregates (max = the slowest site, the
    // real deployment's critical path).
    result_.site_sizes.reserve(sites_.size());
    for (Site& site : sites_) {
      result_.site_sizes.push_back(site.data().size());
      const double local_seconds =
          site.local_clustering_seconds() + site.model_seconds();
      result_.max_local_seconds =
          std::max(result_.max_local_seconds, local_seconds);
      result_.sum_local_seconds += local_seconds;
    }
  });
}

void DbdcEngine::Transmit() {
  RunStage(StageId::kTransmit, [this] {
    // Routing: every node uplinks its model to its topology parent —
    // sites first (in site order), then the aggregators deepest level
    // first, each merging what its children delivered before forwarding
    // one intermediate model. Under the flat topology every parent is
    // the root and the aggregator pass is empty: the message sequence is
    // exactly the historical star's (the equivalence test pins this).
    //
    // Two regimes:
    //   - protocol disabled (the paper's setting): raw payloads over an
    //     assumed-lossless transport; an undecodable payload aborts.
    //   - protocol enabled: checksummed frames with ack/retry, hop by
    //     hop; every merger ingests whatever arrived intact by the
    //     collection deadline, and a site counts as failed when ANY hop
    //     on its root path failed (its representatives never reached the
    //     global model).
    for (const EndpointId agg : topology_.AggregatorsBottomUp()) {
      aggregators_.try_emplace(agg, agg, *metric_, MakeGlobalParams(config_),
                               config_.topology.aggregator_condense_eps,
                               global_strategy_);
    }
    if (!config_.protocol.enabled) {
      for (Site& site : sites_) {
        result_.num_representatives +=
            site.local_model().representatives.size();
        ctx_.transport->Send(site.site_id(),
                             topology_.ParentOf(site.site_id()),
                             site.EncodeLocalModelBytes());
      }
      for (const EndpointId agg : topology_.AggregatorsBottomUp()) {
        AggregatorNode& node = aggregators_.at(agg);
        for (const NetworkMessage* msg : ctx_.transport->Inbox(agg)) {
          bytes_in_by_node_[agg] += msg->payload.size();
          const DecodeStatus status = node.AddChildModelBytes(msg->payload);
          DBDC_CHECK(status == DecodeStatus::kOk &&
                     "child model payload failed to decode");
        }
        ctx_.transport->Send(agg, topology_.ParentOf(agg),
                             node.EncodeIntermediateModelBytes());
        obs::Count(obs::Counter::kIntermediateModelsForwarded);
      }
      for (const NetworkMessage* msg :
           ctx_.transport->Inbox(kServerEndpoint)) {
        bytes_in_by_node_[kServerEndpoint] += msg->payload.size();
        const DecodeStatus status = server_.AddLocalModelBytes(msg->payload);
        DBDC_CHECK(status == DecodeStatus::kOk &&
                   "local model payload failed to decode");
      }
      result_.sites_reporting = config_.num_sites;
    } else {
      // One reliable hop: Transfer + deadline + decode at the receiving
      // merger. Returns whether the payload entered the receiver's model
      // set.
      const auto uplink_hop = [this](EndpointId from, EndpointId to,
                                     std::vector<std::uint8_t> payload) {
        const TransferOutcome up =
            ctx_.channel->Transfer(from, to, std::move(payload));
        AccumulateProtocolCounters(up, &result_);
        if (!up.delivered ||
            up.delivered_seconds > config_.protocol.collection_deadline_sec) {
          return false;
        }
        std::vector<std::uint8_t> delivered =
            DeliveredPayload(*ctx_.transport, up);
        const std::uint64_t delivered_bytes = delivered.size();
        const DecodeStatus status =
            to == kServerEndpoint
                ? server_.AddLocalModelBytes(delivered)
                : aggregators_.at(to).AddChildModelBytes(delivered);
        if (status != DecodeStatus::kOk) return false;
        bytes_in_by_node_[to] += delivered_bytes;
        return true;
      };
      for (Site& site : sites_) {
        uplink_hop_ok_[site.site_id()] =
            uplink_hop(site.site_id(), topology_.ParentOf(site.site_id()),
                       site.EncodeLocalModelBytes());
      }
      for (const EndpointId agg : topology_.AggregatorsBottomUp()) {
        AggregatorNode& node = aggregators_.at(agg);
        if (node.num_child_models() == 0) {
          // Every child hop failed; there is nothing to forward.
          uplink_hop_ok_[agg] = false;
          continue;
        }
        uplink_hop_ok_[agg] = uplink_hop(agg, topology_.ParentOf(agg),
                                         node.EncodeIntermediateModelBytes());
        obs::Count(obs::Counter::kIntermediateModelsForwarded);
      }
      for (Site& site : sites_) {
        bool reached_root = uplink_hop_ok_.at(site.site_id());
        for (EndpointId node = topology_.ParentOf(site.site_id());
             reached_root && node != kServerEndpoint;
             node = topology_.ParentOf(node)) {
          reached_root = uplink_hop_ok_.at(node);
        }
        if (reached_root) {
          ++result_.sites_reporting;
          result_.num_representatives +=
              site.local_model().representatives.size();
        } else {
          result_.failed_site_ids.push_back(site.site_id());
        }
      }
    }
    result_.sites_failed = config_.num_sites - result_.sites_reporting;
    FillLevelStats();
  });
}

void DbdcEngine::FillLevelStats() {
  std::vector<LevelStats> levels(
      static_cast<std::size_t>(topology_.depth()) + 1);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    levels[l].level = static_cast<int>(l);
  }
  LevelStats& root = levels[0];
  root.nodes = 1;
  root.models_in = static_cast<int>(server_.num_local_models());
  for (const LocalModel& model : server_.local_models()) {
    root.representatives_in += model.representatives.size();
  }
  root.bytes_in = bytes_in_by_node_[kServerEndpoint];
  // root.merge_seconds is the MergeGlobal stage; TakeResult() fills it.
  for (Site& site : sites_) {
    LevelStats& level =
        levels[static_cast<std::size_t>(topology_.LevelOf(site.site_id()))];
    ++level.nodes;
    if (config_.protocol.enabled && !uplink_hop_ok_.at(site.site_id())) {
      ++level.nodes_failed;
    }
  }
  for (const auto& [agg, node] : aggregators_) {
    LevelStats& level =
        levels[static_cast<std::size_t>(topology_.LevelOf(agg))];
    ++level.nodes;
    level.models_in += static_cast<int>(node.num_child_models());
    level.representatives_in += node.representatives_in();
    level.bytes_in += bytes_in_by_node_[agg];
    level.merge_seconds += node.merge_seconds();
    if (config_.protocol.enabled && !uplink_hop_ok_.at(agg)) {
      ++level.nodes_failed;
    }
  }
  result_.level_stats = std::move(levels);
}

void DbdcEngine::MergeGlobal() {
  RunStage(StageId::kMergeGlobal, [this] {
    server_.SetGlobalStrategy(global_strategy_);
    server_.BuildGlobal();
    result_.global_seconds = server_.global_clustering_seconds();
    result_.eps_global_used = server_.global_model().eps_global_used;
  });
}

void DbdcEngine::Broadcast() {
  RunStage(StageId::kBroadcast, [this] {
    global_bytes_ = server_.EncodeGlobalModelBytes();
    received_.assign(sites_.size(), std::nullopt);
    // Top-down over the topology: the root sends to its children in
    // child order; every aggregator the payload reached forwards the
    // bytes it received, verbatim, to its own children. A failed hop
    // cuts the whole subtree below it (those sites keep kNoise). Under
    // the flat topology the root's children are the sites in site order
    // — the historical broadcast loop, message for message.
    const auto downlink_hop =
        [this](EndpointId from, EndpointId to,
               const std::vector<std::uint8_t>& payload)
        -> std::optional<std::vector<std::uint8_t>> {
      if (!config_.protocol.enabled) {
        ctx_.transport->Send(from, to, payload);
        return payload;
      }
      const TransferOutcome down = ctx_.channel->Transfer(from, to, payload);
      AccumulateProtocolCounters(down, &result_);
      if (!down.delivered) return std::nullopt;
      return DeliveredPayload(*ctx_.transport, down);
    };
    // Payload as it arrived at each aggregator (absent = hop failed).
    std::map<EndpointId, std::vector<std::uint8_t>> at_aggregator;
    const auto fan_out = [&](EndpointId node,
                             const std::vector<std::uint8_t>& payload) {
      for (const EndpointId child : topology_.ChildrenOf(node)) {
        std::optional<std::vector<std::uint8_t>> got =
            downlink_hop(node, child, payload);
        if (!got.has_value()) continue;
        if (topology_.IsAggregator(child)) {
          at_aggregator[child] = std::move(*got);
        } else {
          // Sites are created in site-id order, so id == index.
          received_[static_cast<std::size_t>(child)] = std::move(*got);
        }
      }
    };
    fan_out(kServerEndpoint, global_bytes_);
    for (const EndpointId agg : topology_.AggregatorsTopDown()) {
      const auto it = at_aggregator.find(agg);
      if (it == at_aggregator.end()) continue;
      fan_out(agg, it->second);
    }
  });
}

void DbdcEngine::Relabel() {
  RunStage(StageId::kRelabel, [this] {
    // The representative index is built once (over the server's model —
    // byte-identical to every decoded broadcast copy) and shared by all
    // sites' relabel passes. Points of sites the broadcast did not reach
    // keep kNoise.
    const RelabelContext relabel_context(server_.global_model(), *metric_);
    result_.labels.assign(data_->size(), kNoise);
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (!received_[i].has_value()) continue;
      Site& site = sites_[i];
      const DecodeStatus status =
          site.ApplyGlobalModelBytes(*received_[i], &relabel_context);
      if (!config_.protocol.enabled) {
        DBDC_CHECK(status == DecodeStatus::kOk &&
                   "global model payload failed to decode");
      } else if (status != DecodeStatus::kOk) {
        continue;
      }
      ++result_.sites_relabeled;
      result_.max_relabel_seconds =
          std::max(result_.max_relabel_seconds, site.relabel_seconds());
      const std::vector<ClusterId>& labels = site.global_labels();
      for (std::size_t j = 0; j < labels.size(); ++j) {
        result_.labels[site.origin_ids()[j]] = labels[j];
      }
    }
  });
}

DbdcResult DbdcEngine::Run() {
  Partition();
  LocalCluster();
  BuildLocalModel();
  Transmit();
  MergeGlobal();
  Broadcast();
  Relabel();
  return TakeResult();
}

DbdcResult DbdcEngine::TakeResult() {
  DBDC_CHECK(next_stage_ == kNumStages && "pipeline has not finished");
  DBDC_CHECK(!result_taken_ && "TakeResult may be called once");
  result_taken_ = true;
  result_.num_global_clusters = server_.global_model().num_global_clusters;
  result_.bytes_uplink = ctx_.transport->BytesUplink();
  result_.bytes_downlink = ctx_.transport->BytesDownlink();
  result_.global_model = server_.global_model();
  result_.stage_stats = ctx_.stages;
  if (!result_.level_stats.empty()) {
    // The root's merge is the MergeGlobal stage, known only now.
    result_.level_stats[0].merge_seconds = result_.global_seconds;
  }
  // Tier gauge before Snapshot() so the snapshot carries it too.
  const simd::Tier tier = simd::ActiveTier();
  obs::SetGauge(obs::Gauge::kSimdTier,
                static_cast<double>(static_cast<int>(tier)));
  result_.simd_tier = std::string(simd::TierName(tier));
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    result_.metrics_snapshot = metrics->Snapshot();
  }
  return std::move(result_);
}

ContinuousDbdc::ContinuousDbdc(const Metric& metric,
                               const GlobalModelParams& params,
                               const ProtocolConfig& protocol,
                               Transport* network)
    : protocol_(protocol),
      server_(metric, params),
      metric_(&metric),
      global_params_(params),
      topology_(Topology::Flat(0)) {
  DBDC_ASSERT(ValidateProtocolConfig(protocol, "protocol").ok &&
              "invalid ProtocolConfig; call ValidateProtocolConfig for "
              "the field");
  ctx_.transport = network != nullptr ? network : &own_network_;
  if (protocol_.enabled) {
    ctx_.channel.emplace(ctx_.transport, protocol_);
  }
}

void ContinuousDbdc::SetTopology(Topology topology,
                                 double aggregator_condense_eps) {
  DBDC_CHECK(members_.empty() &&
             "set the topology before attaching sites");
  DBDC_CHECK(topology.Validate().empty() && "topology failed Validate()");
  DBDC_CHECK(aggregator_condense_eps >= 0.0);
  topology_ = std::move(topology);
  aggregator_condense_eps_ = aggregator_condense_eps;
  aggregators_.clear();
  dirty_aggregators_.clear();
  for (const EndpointId agg : topology_.AggregatorsBottomUp()) {
    aggregators_.try_emplace(agg, agg, *metric_, global_params_,
                             aggregator_condense_eps_, nullptr);
  }
}

void ContinuousDbdc::AttachSite(StreamingSite* site) {
  DBDC_CHECK(site != nullptr);
  DBDC_CHECK(member_index_.count(site->site_id()) == 0 &&
             "duplicate streaming site id");
  if (!topology_.IsSite(site->site_id())) {
    // Mid-stream join: the deterministic join rule of Topology::AddSite.
    topology_.AddSite(site->site_id());
  }
  member_index_[site->site_id()] = members_.size();
  Member member;
  member.site = site;
  member.last_alive_tick = stats_.ticks;
  members_.push_back(std::move(member));
}

bool ContinuousDbdc::EvictFromParent(EndpointId parent, int child_id) {
  if (parent == kServerEndpoint) {
    const bool evicted = server_.RemoveLocalModel(child_id);
    rebuild_pending_ = rebuild_pending_ || evicted;
    return evicted;
  }
  const bool evicted = aggregators_.at(parent).RemoveChildModel(child_id);
  if (evicted) dirty_aggregators_.insert(parent);
  return evicted;
}

void ContinuousDbdc::RetireSite(int site_id) {
  const auto it = member_index_.find(site_id);
  DBDC_CHECK(it != member_index_.end() && "unknown site id");
  Member& member = members_[it->second];
  DBDC_CHECK(!member.retired && "site already retired");
  member.retired = true;
  EvictFromParent(topology_.ParentOf(site_id), site_id);
  topology_.RemoveSite(site_id);
  // A retirement must leave the global model even when the site never
  // contributed: the next tick still rebuilds only if something was
  // actually evicted (EvictFromParent recorded that).
  ++stats_.sites_retired;
  obs::Count(obs::Counter::kSitesRetired);
}

void ContinuousDbdc::FailAggregator(EndpointId aggregator) {
  DBDC_CHECK(topology_.IsAggregator(aggregator) && "unknown aggregator");
  const EndpointId parent = topology_.ParentOf(aggregator);
  const std::vector<EndpointId> orphans = topology_.ChildrenOf(aggregator);
  topology_.RemoveAggregator(aggregator);
  EvictFromParent(parent, aggregator);
  // The orphans' stored contributions died with the node; every orphan
  // re-delivers its current state to the new parent on the next tick.
  for (const EndpointId orphan : orphans) {
    if (topology_.IsAggregator(orphan)) {
      dirty_aggregators_.insert(orphan);
    } else if (const auto member_it = member_index_.find(orphan);
               member_it != member_index_.end()) {
      members_[member_it->second].force_refresh = true;
    }
  }
  aggregators_.erase(aggregator);
  dirty_aggregators_.erase(aggregator);
  ++stats_.aggregators_failed;
}

std::optional<std::vector<std::uint8_t>> ContinuousDbdc::TickTransfer(
    EndpointId from, EndpointId to, std::vector<std::uint8_t> payload,
    double* transfer_sec, bool enforce_deadline) {
  if (protocol_.enabled) {
    const TransferOutcome outcome =
        ctx_.channel->Transfer(from, to, std::move(payload));
    stats_.protocol_retries += static_cast<std::uint64_t>(outcome.retries);
    *transfer_sec = std::max(*transfer_sec, outcome.elapsed_seconds);
    if (!outcome.delivered) return std::nullopt;
    if (enforce_deadline &&
        outcome.delivered_seconds > protocol_.collection_deadline_sec) {
      return std::nullopt;
    }
    return DeliveredPayload(*ctx_.transport, outcome);
  }
  const std::size_t index =
      ctx_.transport->Send(from, to, std::move(payload));
  if (index == kMessageDropped) return std::nullopt;
  const NetworkMessage& msg = ctx_.transport->Message(index);
  *transfer_sec = std::max(
      *transfer_sec,
      EstimateTransferSeconds(msg.payload.size(), protocol_.link) +
          ctx_.transport->DeliveryDelaySeconds(index));
  return msg.payload;
}

int ContinuousDbdc::Tick() {
  // Anchor the tracer's virtual cursor at this tick's start so the
  // transfers it triggers lay out from the stream's current virtual time.
  if (obs::Tracer* tracer = obs::GlobalTracer()) {
    tracer->SetVirtualNow(ctx_.virtual_now_sec);
  }
  obs::ScopedSpan span("continuous.tick", "continuous");
  span.AddArg("tick", static_cast<std::int64_t>(stats_.ticks));

  int applied = 0;
  double tick_transfer_sec = 0.0;
  bool root_changed = rebuild_pending_;
  rebuild_pending_ = false;

  // Uplink leg: stale sites push a refreshed model to their topology
  // parent, which replaces that site's previous contribution (upsert).
  // A quiet reachable site counts as alive (nothing pending is itself a
  // heartbeat); only sites whose refreshes keep vanishing go stale
  // toward the TTL.
  for (Member& member : members_) {
    if (member.retired) continue;
    StreamingSite* site = member.site;
    const bool needs = member.force_refresh || site->ModelNeedsRefresh();
    if (!needs) {
      member.last_alive_tick = stats_.ticks;
      continue;
    }
    if (site->ModelNeedsRefresh()) site->RefreshModel();
    std::vector<std::uint8_t> bytes = site->EncodeLocalModelBytes();
    ++stats_.refreshes_sent;
    obs::Count(obs::Counter::kRefreshesSent);
    const EndpointId parent = topology_.ParentOf(site->site_id());
    bool ok = false;
    std::optional<std::vector<std::uint8_t>> delivered =
        TickTransfer(site->site_id(), parent, std::move(bytes),
                     &tick_transfer_sec, /*enforce_deadline=*/true);
    if (delivered.has_value()) {
      if (parent == kServerEndpoint) {
        ok = server_.UpsertLocalModelBytes(*delivered) == DecodeStatus::kOk;
        root_changed = root_changed || ok;
      } else {
        ok = aggregators_.at(parent).UpsertChildModelBytes(*delivered) ==
             DecodeStatus::kOk;
        if (ok) dirty_aggregators_.insert(parent);
      }
    }
    if (ok) {
      ++stats_.refreshes_applied;
      obs::Count(obs::Counter::kRefreshesApplied);
      ++applied;
      member.last_alive_tick = stats_.ticks;
      member.force_refresh = false;
      member.expired = false;
    } else {
      // The site's previous model stays in effect; the stream self-heals
      // on its next refresh.
      ++stats_.refreshes_lost;
      obs::Count(obs::Counter::kRefreshesLost);
    }
  }

  // TTL sweep: a site silent for ttl_ticks_ consecutive ticks is presumed
  // dead — its stale model leaves the model set so it stops polluting
  // the global model. The site stays attached: a later refresh that gets
  // through re-admits it (force_refresh accelerates that recovery).
  if (ttl_ticks_ > 0) {
    for (Member& member : members_) {
      if (member.retired || member.expired) continue;
      if (stats_.ticks - member.last_alive_tick < ttl_ticks_) continue;
      member.expired = true;
      member.force_refresh = true;
      EvictFromParent(topology_.ParentOf(member.site->site_id()),
                      member.site->site_id());
      root_changed = root_changed || rebuild_pending_;
      rebuild_pending_ = false;
      ++stats_.sites_expired;
      obs::Count(obs::Counter::kSitesExpired);
    }
  }

  // Aggregator leg, deepest level first: every node whose child set
  // changed re-merges and forwards one intermediate model to its parent.
  // A lost forward keeps the node dirty — retried next tick. A node
  // drained of children evicts its own contribution instead.
  for (const EndpointId agg : topology_.AggregatorsBottomUp()) {
    if (dirty_aggregators_.count(agg) == 0) continue;
    AggregatorNode& node = aggregators_.at(agg);
    const EndpointId parent = topology_.ParentOf(agg);
    if (node.num_child_models() == 0) {
      dirty_aggregators_.erase(agg);
      EvictFromParent(parent, agg);
      root_changed = root_changed || rebuild_pending_;
      rebuild_pending_ = false;
      continue;
    }
    std::vector<std::uint8_t> bytes = node.EncodeIntermediateModelBytes();
    ++stats_.aggregator_forwards;
    obs::Count(obs::Counter::kIntermediateModelsForwarded);
    bool ok = false;
    std::optional<std::vector<std::uint8_t>> delivered =
        TickTransfer(agg, parent, std::move(bytes), &tick_transfer_sec,
                     /*enforce_deadline=*/true);
    if (delivered.has_value()) {
      if (parent == kServerEndpoint) {
        ok = server_.UpsertLocalModelBytes(*delivered) == DecodeStatus::kOk;
        root_changed = root_changed || ok;
      } else {
        ok = aggregators_.at(parent).UpsertChildModelBytes(*delivered) ==
             DecodeStatus::kOk;
        if (ok) dirty_aggregators_.insert(parent);
      }
    }
    if (ok) {
      dirty_aggregators_.erase(agg);
    } else {
      ++stats_.aggregator_forwards_lost;
    }
  }

  // Merge + downlink leg, only when the root's view actually changed:
  // quiet ticks cost zero bytes and zero global rebuilds. The broadcast
  // routes top-down over the topology; a failed aggregator hop cuts the
  // whole subtree below it that tick.
  if (root_changed) {
    server_.BuildGlobal();
    ++stats_.global_rebuilds;
    obs::Count(obs::Counter::kGlobalRebuilds);
    const std::vector<std::uint8_t> global_bytes =
        server_.EncodeGlobalModelBytes();
    std::map<EndpointId, std::vector<std::uint8_t>> at_node;
    const auto fan_out = [&](EndpointId node,
                             const std::vector<std::uint8_t>& payload) {
      for (const EndpointId child : topology_.ChildrenOf(node)) {
        std::optional<std::vector<std::uint8_t>> got =
            TickTransfer(node, child, payload, &tick_transfer_sec,
                         /*enforce_deadline=*/false);
        if (got.has_value()) at_node[child] = std::move(*got);
      }
    };
    fan_out(kServerEndpoint, global_bytes);
    for (const EndpointId agg : topology_.AggregatorsTopDown()) {
      const auto it = at_node.find(agg);
      if (it == at_node.end()) continue;
      fan_out(agg, it->second);
    }
    for (Member& member : members_) {
      if (member.retired) continue;
      const auto it = at_node.find(member.site->site_id());
      const bool relabeled =
          it != at_node.end() &&
          member.site->ApplyGlobalModelBytes(it->second, &member.labels) ==
              DecodeStatus::kOk;
      if (relabeled) {
        ++stats_.broadcasts_delivered;
      } else {
        ++stats_.broadcasts_lost;
      }
    }
  }

  ctx_.virtual_now_sec += tick_transfer_sec;
  ++stats_.ticks;
  obs::Count(obs::Counter::kContinuousTicks);
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    metrics->SetGauge(obs::Gauge::kVirtualClockSec, ctx_.virtual_now_sec);
  }
  return applied;
}

}  // namespace dbdc
