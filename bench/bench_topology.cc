// Aggregation-topology scaling benchmark: what does routing the uplink
// through a k-ary tree of AggregatorNodes buy at the root as the site
// count grows 10 -> 1000?
//
// For each site count the same scaled dataset (fixed [0,100]^2 region,
// n proportional to sites so every site holds a constant-size slab at
// global density — SpatialSlabPartitioner keeps the per-site density
// equal to the global density at any site count) runs twice over a
// seeded FaultyNetwork with the reliable protocol enabled:
//
//   flat     — the paper's star: every site uplinks straight to the
//              root, so the root's fan-in, merge input and uplink bytes
//              all grow linearly with the site count.
//   tree:<f> — a balanced fanout-f aggregation tree with condensing
//              aggregators (aggregator_condense_eps = eps_local): each
//              AggregatorNode collapses cross-child representatives of
//              one intermediate cluster before forwarding, so the
//              root's fan-in stays <= f and its uplink bytes grow
//              sub-linearly in the site count.
//
// The root uplink column is SimulatedNetwork::BytesUplink() — only
// traffic terminating at the root endpoint counts, so it is exactly the
// "bytes into the root" number under both shapes. Root merge time and
// fan-in come from DbdcResult::level_stats[0].
//
// With --out FILE the results are emitted as machine-readable JSON
// (schema "dbdc-topology-bench-v1"); --quick drops the 1000-site point
// for CI smoke runs. Faults, partitioning and data are all seeded, so
// byte counts, fan-ins and cluster counts are identical across runs
// (only timings vary with the hardware).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "distrib/fault.h"
#include "distrib/network.h"
#include "distrib/partitioner.h"

namespace {

constexpr int kFanout = 8;
constexpr double kDropRate = 0.05;
constexpr int kPointsPerSite = 120;

struct TopologyRow {
  int sites = 0;
  std::string topology;
  int points = 0;
  std::size_t levels = 0;
  std::uint64_t root_uplink_bytes = 0;
  std::uint64_t bytes_total = 0;
  double root_merge_seconds = 0.0;
  int root_models_in = 0;
  int sites_reporting = 0;
  int sites_failed = 0;
  int clusters = 0;
};

TopologyRow RunOne(const dbdc::SyntheticDataset& dataset, int num_sites,
                   bool tree) {
  dbdc::DbdcConfig config = dbdc::bench::MakeDbdcConfig(dataset, num_sites);
  static const dbdc::SpatialSlabPartitioner slab(0);
  config.partitioner = &slab;
  config.protocol.enabled = true;
  config.protocol.max_attempts = 6;
  if (tree) {
    config.topology.kind = dbdc::TopologyKind::kTree;
    config.topology.fanout = kFanout;
    config.topology.aggregator_condense_eps = dataset.suggested_params.eps;
  }

  dbdc::FaultSpec faults;
  faults.drop_rate = kDropRate;
  faults.seed = 20260808;
  dbdc::SimulatedNetwork inner;
  dbdc::FaultyNetwork net(&inner, faults);
  const dbdc::DbdcResult result =
      dbdc::RunDbdc(dataset.data, dbdc::Euclidean(), config, &net);

  TopologyRow row;
  row.sites = num_sites;
  row.topology = tree ? dbdc::bench::Fmt("tree:%d", kFanout) : "flat";
  row.points = static_cast<int>(dataset.data.size());
  row.levels = result.level_stats.size();
  row.root_uplink_bytes = result.bytes_uplink;
  row.bytes_total = net.BytesTotal();
  if (!result.level_stats.empty()) {
    row.root_merge_seconds = result.level_stats[0].merge_seconds;
    row.root_models_in = result.level_stats[0].models_in;
  }
  row.sites_reporting = result.sites_reporting;
  row.sites_failed = result.sites_failed;
  row.clusters = result.num_global_clusters;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using dbdc::bench::Fmt;
  dbdc::bench::HarnessOptions options;
  if (!dbdc::bench::ParseHarnessOptions(argc, argv, &options)) return 2;
  const dbdc::bench::HarnessMetrics metrics;
  const bool quick = options.quick;

  const std::vector<int> site_counts =
      quick ? std::vector<int>{10, 100} : std::vector<int>{10, 100, 1000};

  std::vector<TopologyRow> rows;
  dbdc::bench::Table table(Fmt(
      "Root uplink and merge cost, flat star vs fanout-%d aggregation "
      "tree, drop rate %.2f (seeded)",
      kFanout, kDropRate));
  table.SetHeader({"sites", "topology", "points", "levels", "root fan-in",
                   "root uplink B", "root merge s", "reporting", "failed",
                   "clusters"});

  for (const int sites : site_counts) {
    const dbdc::SyntheticDataset dataset = dbdc::MakeScaledDataset(
        static_cast<std::size_t>(sites) * kPointsPerSite);
    for (const bool tree : {false, true}) {
      rows.push_back(RunOne(dataset, sites, tree));
      const TopologyRow& row = rows.back();
      table.AddRow(
          {Fmt("%d", row.sites), row.topology, Fmt("%d", row.points),
           Fmt("%zu", row.levels), Fmt("%d", row.root_models_in),
           Fmt("%llu", static_cast<unsigned long long>(row.root_uplink_bytes)),
           Fmt("%.6f", row.root_merge_seconds), Fmt("%d", row.sites_reporting),
           Fmt("%d", row.sites_failed), Fmt("%d", row.clusters)});
    }
  }
  table.Print();

  // The headline ratio: how much root uplink the tree shaves off the
  // star at the largest site count measured.
  const TopologyRow& flat_last = rows[rows.size() - 2];
  const TopologyRow& tree_last = rows.back();
  if (tree_last.root_uplink_bytes > 0) {
    std::printf("at %d sites: tree root uplink %llu B vs flat %llu B "
                "(%.2fx), root fan-in %d vs %d\n",
                flat_last.sites,
                static_cast<unsigned long long>(tree_last.root_uplink_bytes),
                static_cast<unsigned long long>(flat_last.root_uplink_bytes),
                static_cast<double>(flat_last.root_uplink_bytes) /
                    static_cast<double>(tree_last.root_uplink_bytes),
                tree_last.root_models_in, flat_last.root_models_in);
  }

  if (!options.out_path.empty()) {
    std::ofstream out(options.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.out_path.c_str());
      return 1;
    }
    out << "{\n";
    out << "  \"schema\": \"dbdc-topology-bench-v1\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"fanout\": " << kFanout << ",\n";
    out << "  \"drop_rate\": " << Fmt("%.4f", kDropRate) << ",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const TopologyRow& r = rows[i];
      out << "    {\"sites\": " << r.sites << ", \"topology\": \""
          << r.topology << "\", \"points\": " << r.points
          << ", \"levels\": " << r.levels
          << ", \"root_uplink_bytes\": " << r.root_uplink_bytes
          << ", \"bytes_total\": " << r.bytes_total
          << ", \"root_merge_seconds\": " << Fmt("%.6f", r.root_merge_seconds)
          << ", \"root_models_in\": " << r.root_models_in
          << ", \"sites_reporting\": " << r.sites_reporting
          << ", \"sites_failed\": " << r.sites_failed
          << ", \"clusters\": " << r.clusters << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"metrics\": " << metrics.Json() << "\n";
    out << "}\n";
    std::printf("wrote %s\n", options.out_path.c_str());
  }
  return 0;
}
