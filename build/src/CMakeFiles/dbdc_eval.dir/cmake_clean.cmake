file(REMOVE_RECURSE
  "CMakeFiles/dbdc_eval.dir/eval/diagnostics.cc.o"
  "CMakeFiles/dbdc_eval.dir/eval/diagnostics.cc.o.d"
  "CMakeFiles/dbdc_eval.dir/eval/external_indices.cc.o"
  "CMakeFiles/dbdc_eval.dir/eval/external_indices.cc.o.d"
  "CMakeFiles/dbdc_eval.dir/eval/quality.cc.o"
  "CMakeFiles/dbdc_eval.dir/eval/quality.cc.o.d"
  "CMakeFiles/dbdc_eval.dir/eval/silhouette.cc.o"
  "CMakeFiles/dbdc_eval.dir/eval/silhouette.cc.o.d"
  "libdbdc_eval.a"
  "libdbdc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbdc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
