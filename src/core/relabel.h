#ifndef DBDC_CORE_RELABEL_H_
#define DBDC_CORE_RELABEL_H_

#include <memory>
#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "core/global_model.h"
#include "index/grid_index.h"

namespace dbdc {

/// Query structure over a global model's representatives, built once and
/// shared by every relabel pass: holds the maximum representative ε-range
/// and a grid index over the representative points. In the simulated
/// driver the server builds one context per broadcast instead of every
/// site rebuilding an identical index over the identical model.
///
/// The GlobalModel must outlive the context.
class RelabelContext {
 public:
  RelabelContext(const GlobalModel& global, const Metric& metric);

  const GlobalModel& global() const { return *global_; }
  /// Maximum ε_r over all representatives (0 when the model is empty).
  double max_eps() const { return max_eps_; }
  /// Null when the model has no representatives.
  const GridIndex* rep_index() const { return rep_index_.get(); }

 private:
  const GlobalModel* global_;
  double max_eps_ = 0.0;
  std::unique_ptr<GridIndex> rep_index_;
};

/// Client-side relabeling (Sec. 7): every local object within the
/// ε_r-neighborhood of a global representative r is assigned r's global
/// cluster id — this can merge formerly independent local clusters and
/// absorb former local noise. Objects covered by no representative stay
/// noise.
///
/// When several representatives of different global clusters cover an
/// object, the nearest one wins (the paper leaves this tie open; nearest
/// is the deterministic choice). Exact distance ties are broken by the
/// smaller representative id, so the result is independent of the
/// candidate order the index returns — stable across index types and
/// thread counts.
///
/// Points are independent, so the scan parallelizes embarrassingly;
/// `threads` != 1 runs it on a pool (0 = hardware concurrency) with
/// bit-identical results.
///
/// Returns one global label (or kNoise) per point of `site_data`.
std::vector<ClusterId> RelabelSite(const Dataset& site_data,
                                   const RelabelContext& context,
                                   const Metric& metric, int threads = 1);

/// Convenience overload building a private RelabelContext.
std::vector<ClusterId> RelabelSite(const Dataset& site_data,
                                   const GlobalModel& global,
                                   const Metric& metric, int threads = 1);

}  // namespace dbdc

#endif  // DBDC_CORE_RELABEL_H_
