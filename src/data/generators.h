#ifndef DBDC_DATA_GENERATORS_H_
#define DBDC_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "common/dataset.h"
#include "common/rng.h"

namespace dbdc {

/// A synthetic dataset together with its generating ground truth and the
/// DBSCAN parameters calibrated for it.
struct SyntheticDataset {
  std::string name;
  Dataset data = Dataset(2);
  /// Generating component per point; kNoise for background noise. This is
  /// the *generator's* truth, used for sanity checks — the quality
  /// criteria of the paper compare against a central DBSCAN run instead.
  std::vector<ClusterId> true_labels;
  /// Eps_local / MinPts calibrated so central DBSCAN recovers the
  /// generated structure.
  DbscanParams suggested_params;
  int num_components = 0;
};

/// A Gaussian blob specification.
struct BlobSpec {
  Point center;
  double stddev = 1.0;
  std::size_t count = 0;
};

/// Appends `spec.count` Gaussian-distributed points around spec.center.
void AppendBlob(const BlobSpec& spec, ClusterId label, Rng* rng,
                Dataset* data, std::vector<ClusterId>* labels);

/// Appends uniform background noise over the box [lo, hi]^dim.
void AppendUniformNoise(std::size_t count, double lo, double hi, Rng* rng,
                        Dataset* data, std::vector<ClusterId>* labels);

/// Appends a ring (annulus) of points — a non-globular shape k-means
/// cannot capture but DBSCAN can (the paper's Sec. 4 motivation).
void AppendRing(const Point& center, double radius, double thickness,
                std::size_t count, ClusterId label, Rng* rng, Dataset* data,
                std::vector<ClusterId>* labels);

/// General blob generator: `num_blobs` Gaussian clusters with centers on a
/// jittered grid over [0,region]^2 (guaranteed separation), plus
/// `noise_fraction` uniform noise over the same square. Total point count
/// is `n`. Smaller regions move the clusters closer together, which is
/// what makes an over-sized Eps_global erroneously merge clusters
/// (Fig. 9's quality drop-off).
SyntheticDataset MakeBlobs(std::size_t n, int num_blobs,
                           double noise_fraction, double stddev_lo,
                           double stddev_hi, std::uint64_t seed,
                           double region = 100.0);

/// Paper test data set A (Fig. 6a): 8700 points, randomly generated
/// clusters of varying size and extent plus light background noise.
SyntheticDataset MakeTestDatasetA(std::uint64_t seed = 1);

/// Paper test data set B (Fig. 6b): 4000 points, very noisy (~40 %
/// uniform background noise around a few clusters).
SyntheticDataset MakeTestDatasetB(std::uint64_t seed = 2);

/// Paper test data set C (Fig. 6c): 1021 points in 3 clusters.
SyntheticDataset MakeTestDatasetC(std::uint64_t seed = 3);

/// Dataset-A-style generator at arbitrary cardinality, used by the
/// runtime experiments (Figs. 7 and 8): the spatial region stays fixed
/// while n grows, so neighborhood sizes — and central DBSCAN's cost —
/// grow with n exactly as in the paper's setup.
SyntheticDataset MakeScaledDataset(std::size_t n, std::uint64_t seed = 7);

}  // namespace dbdc

#endif  // DBDC_DATA_GENERATORS_H_
