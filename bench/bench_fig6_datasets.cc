// Reproduces Fig. 6 of the DBDC paper: the three test data sets A (8700
// points, randomly generated clusters), B (4000 points, very noisy) and
// C (1021 points, 3 clusters). The paper shows scatter plots; this bench
// prints the structural statistics (cardinality, clusters found by the
// central DBSCAN reference, noise share) and times generation plus the
// reference clustering of each set.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dbdc.h"
#include "data/generators.h"

namespace dbdc {
namespace {

struct Fig6Row {
  std::string name;
  std::size_t n = 0;
  int components = 0;
  int dbscan_clusters = 0;
  double noise_pct = 0.0;
  double eps = 0.0;
  int min_pts = 0;
};

std::vector<Fig6Row>& Rows() {
  static auto* rows = new std::vector<Fig6Row>();
  return *rows;
}

SyntheticDataset MakeByIndex(int idx) {
  switch (idx) {
    case 0:
      return MakeTestDatasetA();
    case 1:
      return MakeTestDatasetB();
    default:
      return MakeTestDatasetC();
  }
}

void BM_GenerateAndCluster(benchmark::State& state) {
  const int idx = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const SyntheticDataset synth = MakeByIndex(idx);
    const Clustering central = RunCentralDbscan(
        synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
    benchmark::DoNotOptimize(central.num_clusters);
    Fig6Row row;
    row.name = synth.name;
    row.n = synth.data.size();
    row.components = synth.num_components;
    row.dbscan_clusters = central.num_clusters;
    row.noise_pct = 100.0 * static_cast<double>(central.CountNoise()) /
                    static_cast<double>(synth.data.size());
    row.eps = synth.suggested_params.eps;
    row.min_pts = synth.suggested_params.min_pts;
    bool found = false;
    for (const Fig6Row& existing : Rows()) {
      if (existing.name == row.name) found = true;
    }
    if (!found) Rows().push_back(row);
    state.counters["clusters"] = central.num_clusters;
    state.counters["noise_pct"] = row.noise_pct;
  }
}

void RegisterAll() {
  for (const int idx : {0, 1, 2}) {
    benchmark::RegisterBenchmark("generate_and_cluster",
                                 BM_GenerateAndCluster)
        ->Arg(idx)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  bench::Table table("Fig. 6 — test data sets (paper: A=8700 random "
                     "clusters, B=4000 very noisy, C=1021 / 3 clusters)");
  table.SetHeader({"set", "n", "generated components", "DBSCAN clusters",
                   "noise [%]", "Eps_local", "MinPts"});
  for (const Fig6Row& row : Rows()) {
    table.AddRow({row.name, bench::Fmt("%zu", row.n),
                  bench::Fmt("%d", row.components),
                  bench::Fmt("%d", row.dbscan_clusters),
                  bench::Fmt("%.1f", row.noise_pct),
                  bench::Fmt("%.2f", row.eps),
                  bench::Fmt("%d", row.min_pts)});
  }
  table.Print();
}

}  // namespace
}  // namespace dbdc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dbdc::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbdc::PrintPaperTables();
  return 0;
}
