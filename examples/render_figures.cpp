// Regenerates the paper's visual artifacts:
//   * Fig. 6 — scatter plots of test data sets A, B, C (PPM images,
//     colored by the central DBSCAN clustering, plus ASCII previews);
//   * the OPTICS reachability plot of data set A's representatives (the
//     Sec. 6 visualization for choosing Eps_global).
//
//   $ ./render_figures [output-dir]     (default: current directory)

#include <cstdio>
#include <string>
#include <vector>

#include "core/dbdc.h"
#include "distrib/network.h"
#include "core/model_codec.h"
#include "core/optics_global.h"
#include "data/generators.h"
#include "viz/render.h"

int main(int argc, char** argv) {
  using namespace dbdc;
  const std::string dir = argc > 1 ? argv[1] : ".";

  for (int idx = 0; idx < 3; ++idx) {
    const SyntheticDataset synth = idx == 0   ? MakeTestDatasetA()
                                   : idx == 1 ? MakeTestDatasetB()
                                              : MakeTestDatasetC();
    const Clustering central = RunCentralDbscan(
        synth.data, Euclidean(), synth.suggested_params, IndexType::kGrid).clustering;
    const std::string path = dir + "/fig6_dataset_" + synth.name + ".ppm";
    if (!WriteScatterPpm(path, synth.data, central.labels)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("data set %s: %zu points, %d clusters -> %s\n",
                synth.name.c_str(), synth.data.size(), central.num_clusters,
                path.c_str());
    std::printf("%s\n",
                AsciiScatter(synth.data, central.labels, 72, 18).c_str());
  }

  // Reachability plot of data set A's representatives.
  const SyntheticDataset a = MakeTestDatasetA();
  DbdcConfig config;
  config.local_dbscan = a.suggested_params;
  config.num_sites = 4;
  SimulatedNetwork network;
  (void)RunDbdc(a.data, Euclidean(), config, &network);
  std::vector<LocalModel> locals;
  for (const NetworkMessage* msg : network.Inbox(kServerEndpoint)) {
    auto model = DecodeLocalModel(msg->payload);
    if (model.has_value()) locals.push_back(*std::move(model));
  }
  const OpticsGlobalModelBuilder builder(locals, Euclidean());
  std::printf("reachability plot of the %zu representatives (valleys = "
              "global clusters; Sec. 6):\n%s\n",
              builder.num_representatives(),
              AsciiReachabilityPlot(builder.optics(), 72, 14).c_str());
  return 0;
}
