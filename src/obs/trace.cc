#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace dbdc::obs {

namespace internal {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace internal

void SetGlobalTracer(Tracer* tracer) {
  internal::g_tracer.store(tracer, std::memory_order_release);
}

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void AppendArgs(std::string* out, const std::vector<SpanArg>& args) {
  *out += "\"args\": {";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const SpanArg& arg = args[i];
    if (i > 0) *out += ", ";
    *out += '"';
    *out += JsonEscape(arg.key);
    *out += "\": ";
    switch (arg.kind) {
      case SpanArg::Kind::kInt:
        *out += std::to_string(arg.int_value);
        break;
      case SpanArg::Kind::kDouble: {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.9g", arg.double_value);
        *out += buffer;
        break;
      }
      case SpanArg::Kind::kString:
        *out += '"';
        *out += JsonEscape(arg.string_value);
        *out += '"';
        break;
    }
  }
  *out += '}';
}

}  // namespace

/// Per-thread span storage. `open` (the begin/end stack) is touched only
/// by the owning thread; `done` is appended by the owning thread and read
/// by exporters, both under the tracer mutex.
struct Tracer::ThreadBuffer {
  int tid = 0;
  std::vector<SpanRecord> open;
  std::vector<SpanRecord> done;  // Under the tracer's mu_.
};

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  DBDC_CHECK(GlobalTracer() != this &&
             "detach a tracer (SetGlobalTracer(nullptr)) before destroying "
             "it");
}

Tracer::ThreadBuffer* Tracer::ThisThreadBuffer() {
  // Tracer ids are process-unique and never reused, so a stale cache
  // entry can never alias a live tracer.
  thread_local struct {
    std::uint64_t tracer_id = 0;
    ThreadBuffer* buffer = nullptr;
  } cache;
  if (cache.tracer_id == id_) return cache.buffer;
  const MutexLock lock(&mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<int>(threads_.size());
  threads_.push_back(std::move(buffer));
  cache.tracer_id = id_;
  cache.buffer = threads_.back().get();
  return cache.buffer;
}

std::int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::BeginSpan(std::string_view name, std::string_view category) {
  ThreadBuffer* buffer = ThisThreadBuffer();
  SpanRecord record;
  record.name.assign(name);
  record.category.assign(category);
  record.tid = buffer->tid;
  record.depth = static_cast<int>(buffer->open.size());
  record.start_us = NowMicros();
  buffer->open.push_back(std::move(record));
}

void Tracer::AddSpanArg(std::string_view key, std::int64_t value) {
  ThreadBuffer* buffer = ThisThreadBuffer();
  DBDC_CHECK(!buffer->open.empty() && "AddSpanArg outside an open span");
  SpanArg arg;
  arg.key.assign(key);
  arg.kind = SpanArg::Kind::kInt;
  arg.int_value = value;
  buffer->open.back().args.push_back(std::move(arg));
}

void Tracer::AddSpanArg(std::string_view key, double value) {
  ThreadBuffer* buffer = ThisThreadBuffer();
  DBDC_CHECK(!buffer->open.empty() && "AddSpanArg outside an open span");
  SpanArg arg;
  arg.key.assign(key);
  arg.kind = SpanArg::Kind::kDouble;
  arg.double_value = value;
  buffer->open.back().args.push_back(std::move(arg));
}

void Tracer::AddSpanArg(std::string_view key, std::string_view value) {
  ThreadBuffer* buffer = ThisThreadBuffer();
  DBDC_CHECK(!buffer->open.empty() && "AddSpanArg outside an open span");
  SpanArg arg;
  arg.key.assign(key);
  arg.kind = SpanArg::Kind::kString;
  arg.string_value.assign(value);
  buffer->open.back().args.push_back(std::move(arg));
}

void Tracer::EndSpan() {
  ThreadBuffer* buffer = ThisThreadBuffer();
  DBDC_CHECK(!buffer->open.empty() && "EndSpan without a matching Begin");
  SpanRecord record = std::move(buffer->open.back());
  buffer->open.pop_back();
  record.dur_us = NowMicros() - record.start_us;
  const MutexLock lock(&mu_);
  buffer->done.push_back(std::move(record));
}

void Tracer::RecordVirtualSpan(std::string_view name,
                               std::string_view category, double start_sec,
                               double duration_sec,
                               std::vector<SpanArg> args) {
  DBDC_CHECK(std::isfinite(start_sec) && std::isfinite(duration_sec));
  ThreadBuffer* buffer = ThisThreadBuffer();
  SpanRecord record;
  record.name.assign(name);
  record.category.assign(category);
  record.tid = buffer->tid;
  record.virtual_clock = true;
  record.start_us = static_cast<std::int64_t>(start_sec * 1e6);
  record.dur_us = static_cast<std::int64_t>(duration_sec * 1e6);
  record.args = std::move(args);
  const MutexLock lock(&mu_);
  buffer->done.push_back(std::move(record));
}

void Tracer::SetVirtualNow(double seconds) {
  virtual_now_.store(seconds, std::memory_order_relaxed);
}

void Tracer::AdvanceVirtual(double seconds) {
  // Single-writer in practice (the simulation loop); a CAS loop keeps it
  // well-defined regardless.
  double now = virtual_now_.load(std::memory_order_relaxed);
  while (!virtual_now_.compare_exchange_weak(now, now + seconds,
                                             std::memory_order_relaxed)) {
  }
}

double Tracer::VirtualNow() const {
  return virtual_now_.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::vector<SpanRecord> spans;
  {
    const MutexLock lock(&mu_);
    for (const auto& buffer : threads_) {
      spans.insert(spans.end(), buffer->done.begin(), buffer->done.end());
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.dur_us > b.dur_us;  // Parents before children.
            });
  return spans;
}

std::size_t Tracer::NumSpans() const {
  const MutexLock lock(&mu_);
  std::size_t total = 0;
  for (const auto& buffer : threads_) total += buffer->done.size();
  return total;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<SpanRecord> spans = Spans();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out +=
      "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"dbdc (wall clock)\"}},\n";
  out +=
      "{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"dbdc (virtual clock, simulated seconds as "
      "\\u00b5s)\"}}";
  int max_tid = -1;
  for (const SpanRecord& span : spans) max_tid = std::max(max_tid, span.tid);
  for (int tid = 0; tid <= max_tid; ++tid) {
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"thread " +
           std::to_string(tid) + "\"}}";
  }
  for (const SpanRecord& span : spans) {
    out += ",\n{\"name\": \"" + JsonEscape(span.name) + "\", \"cat\": \"" +
           JsonEscape(span.category) + "\", \"ph\": \"X\", \"pid\": " +
           (span.virtual_clock ? std::string("2") : std::string("1")) +
           ", \"tid\": " + std::to_string(span.tid) +
           ", \"ts\": " + std::to_string(span.start_us) +
           ", \"dur\": " + std::to_string(span.dur_us) + ", ";
    AppendArgs(&out, span.args);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << ChromeTraceJson();
  return out.good();
}

}  // namespace dbdc::obs
