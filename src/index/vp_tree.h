#ifndef DBDC_INDEX_VP_TREE_H_
#define DBDC_INDEX_VP_TREE_H_

#include <span>
#include <utility>
#include <vector>

#include "index/neighbor_index.h"

namespace dbdc {

/// Vantage-point tree (Yianilos, SODA 1993) — a second metric-only
/// access method besides the M-tree.
///
/// Each interior node holds a vantage point and the median distance of
/// its subtree to that point; queries prune with the triangle
/// inequality. Works with any metric; built once (static), balanced by
/// construction via median splits.
class VpTree final : public NeighborIndex {
 public:
  VpTree(const Dataset& data, const Metric& metric);

  void RangeQuery(std::span<const double> q, double eps,
                  std::vector<PointId>* out) const override;
  using NeighborIndex::RangeQuery;
  void KnnQuery(std::span<const double> q, int k,
                std::vector<PointId>* out) const override;
  std::size_t size() const override { return count_; }
  std::string_view name() const override { return "vptree"; }
  const Dataset& data() const override { return *data_; }
  const Metric& metric() const override { return *metric_; }

 private:
  struct Node {
    PointId vantage = -1;    // Interior: vantage point; also indexed.
    double threshold = 0.0;  // Median distance to the vantage point.
    std::int32_t inner = -1;
    std::int32_t outer = -1;
    std::int32_t begin = 0;  // Leaf: range [begin, end) into ids_.
    std::int32_t end = 0;
    bool is_leaf() const { return vantage < 0; }
  };

  std::int32_t Build(std::vector<std::pair<double, PointId>>* items,
                     std::int32_t begin, std::int32_t end);
  void RangeRecursive(std::int32_t node, std::span<const double> q,
                      double eps, std::vector<PointId>* out) const;
  void KnnRecursive(std::int32_t node, std::span<const double> q,
                    std::size_t k,
                    std::vector<std::pair<double, PointId>>* heap) const;

  static constexpr std::int32_t kLeafSize = 12;

  const Dataset* data_;
  const Metric* metric_;
  std::vector<PointId> ids_;  // Leaf buckets.
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t count_ = 0;
};

}  // namespace dbdc

#endif  // DBDC_INDEX_VP_TREE_H_
