file(REMOVE_RECURSE
  "libdbdc_data.a"
)
