#include "core/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/simd_kernels.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbdc {
namespace {

GlobalModelParams MakeGlobalParams(const DbdcConfig& config) {
  GlobalModelParams params;
  params.eps_global = config.eps_global;
  params.min_pts_global = 2;
  params.index_type = config.index_type;
  params.min_weight_global = config.min_weight_global;
  params.num_threads = config.num_threads;
  return params;
}

void AccumulateProtocolCounters(const TransferOutcome& outcome,
                                DbdcResult* result) {
  result->protocol_retries += static_cast<std::uint64_t>(outcome.retries);
  result->frames_dropped += static_cast<std::uint64_t>(outcome.data_drops);
  result->frames_corrupted +=
      static_cast<std::uint64_t>(outcome.data_corruptions);
  result->acks_lost += static_cast<std::uint64_t>(outcome.ack_losses);
}

/// Unwraps the payload of a frame the channel reports as delivered
/// intact. The frame decoded once already (that is what "delivered"
/// means), so failure here is a programming error, not wire corruption.
std::vector<std::uint8_t> DeliveredPayload(const Transport& network,
                                           const TransferOutcome& outcome) {
  DBDC_CHECK(outcome.delivered);
  std::optional<Frame> frame =
      DecodeFrame(network.Message(outcome.delivered_index).payload);
  DBDC_CHECK(frame.has_value() && "delivered frame no longer decodes");
  return std::move(frame->payload);
}

}  // namespace

DbdcEngine::DbdcEngine(const Dataset& data, const Metric& metric,
                       const DbdcConfig& config, Transport* network)
    : data_(&data),
      metric_(&metric),
      config_(config),
      site_config_{config.local_dbscan, config.model_type,
                   config.kmeans,       config.index_type,
                   config.condense_eps, config.num_threads},
      server_(metric, MakeGlobalParams(config)) {
  DBDC_CHECK(config_.num_sites >= 1);
  ctx_.transport = network != nullptr ? network : &own_network_;
  if (config_.protocol.enabled) {
    ctx_.channel.emplace(ctx_.transport, config_.protocol);
  }
  if (config_.parallel_sites) {
    // One worker per site, as in a real deployment where every site is
    // its own machine (sites are fully independent, so the result is
    // identical to the sequential run for every pool size).
    ctx_.site_pool = std::make_unique<ThreadPool>(config_.num_sites);
  }
}

void DbdcEngine::SetLocalModelStrategy(const LocalModelStrategy* strategy) {
  DBDC_CHECK(next_stage_ <= 2 && "BuildLocalModel already ran");
  local_strategy_ = strategy;
}

void DbdcEngine::SetGlobalModelStrategy(const GlobalModelStrategy* strategy) {
  DBDC_CHECK(next_stage_ <= 4 && "MergeGlobal already ran");
  global_strategy_ = strategy;
}

template <typename Fn>
void DbdcEngine::ForEachSite(Fn&& fn) {
  if (ctx_.site_pool != nullptr) {
    ctx_.site_pool->ParallelFor(
        sites_.size(), [this, &fn](std::size_t i) { fn(sites_[i]); });
  } else {
    for (Site& site : sites_) fn(site);
  }
}

template <typename Fn>
void DbdcEngine::RunStage(StageId id, Fn&& body) {
  DBDC_CHECK(next_stage_ == static_cast<int>(id) &&
             "engine stages must run in pipeline order");
  ++next_stage_;
  const std::uint64_t uplink_before = ctx_.transport->BytesUplink();
  const std::uint64_t downlink_before = ctx_.transport->BytesDownlink();
  obs::ScopedSpan span(StageName(id), "stage");
  Timer timer;
  body();
  StageStats stats;
  stats.stage = id;
  stats.seconds = timer.Seconds();
  stats.bytes_uplink = ctx_.transport->BytesUplink() - uplink_before;
  stats.bytes_downlink = ctx_.transport->BytesDownlink() - downlink_before;
  span.AddArg("bytes_uplink", static_cast<std::int64_t>(stats.bytes_uplink));
  span.AddArg("bytes_downlink",
              static_cast<std::int64_t>(stats.bytes_downlink));
  ctx_.stages.push_back(stats);
}

void DbdcEngine::Partition() {
  RunStage(StageId::kPartition, [this] {
    if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
      metrics->SetGauge(obs::Gauge::kDatasetPoints,
                        static_cast<double>(data_->size()));
    }
    // In the real deployment the data is born at the sites; the
    // partitioner simulates that placement.
    const UniformRandomPartitioner default_partitioner;
    const Partitioner* partitioner = config_.partitioner != nullptr
                                         ? config_.partitioner
                                         : &default_partitioner;
    Rng rng(config_.seed);
    const std::vector<std::vector<PointId>> parts =
        partitioner->Partition(*data_, config_.num_sites, &rng);

    sites_.reserve(parts.size());
    for (int s = 0; s < config_.num_sites; ++s) {
      Dataset site_data(data_->dim());
      site_data.Reserve(parts[s].size());
      for (const PointId id : parts[s]) site_data.Add(data_->point(id));
      sites_.emplace_back(s, *metric_, std::move(site_data), parts[s]);
    }
  });
}

void DbdcEngine::LocalCluster() {
  RunStage(StageId::kLocalCluster, [this] {
    ForEachSite(
        [this](Site& site) { site.RunLocalClustering(site_config_); });
  });
}

void DbdcEngine::BuildLocalModel() {
  RunStage(StageId::kBuildLocalModel, [this] {
    site_config_.model_strategy = local_strategy_;
    ForEachSite([this](Site& site) { site.BuildModel(site_config_); });

    // The paper's per-phase cost aggregates (max = the slowest site, the
    // real deployment's critical path).
    result_.site_sizes.reserve(sites_.size());
    for (Site& site : sites_) {
      result_.site_sizes.push_back(site.data().size());
      const double local_seconds =
          site.local_clustering_seconds() + site.model_seconds();
      result_.max_local_seconds =
          std::max(result_.max_local_seconds, local_seconds);
      result_.sum_local_seconds += local_seconds;
    }
  });
}

void DbdcEngine::Transmit() {
  RunStage(StageId::kTransmit, [this] {
    // Two regimes:
    //   - protocol disabled (the paper's setting): raw payloads over an
    //     assumed-lossless transport; an undecodable payload aborts.
    //   - protocol enabled: checksummed frames with ack/retry; the
    //     server merges whatever arrived intact by the collection
    //     deadline and the rest of the sites are reported as failed.
    if (!config_.protocol.enabled) {
      for (Site& site : sites_) {
        result_.num_representatives +=
            site.local_model().representatives.size();
        ctx_.transport->Send(site.site_id(), kServerEndpoint,
                             site.EncodeLocalModelBytes());
      }
      for (const NetworkMessage* msg :
           ctx_.transport->Inbox(kServerEndpoint)) {
        const DecodeStatus status = server_.AddLocalModelBytes(msg->payload);
        DBDC_CHECK(status == DecodeStatus::kOk &&
                   "local model payload failed to decode");
      }
      result_.sites_reporting = config_.num_sites;
    } else {
      for (Site& site : sites_) {
        const TransferOutcome up = ctx_.channel->Transfer(
            site.site_id(), kServerEndpoint, site.EncodeLocalModelBytes());
        AccumulateProtocolCounters(up, &result_);
        bool accepted =
            up.delivered &&
            up.delivered_seconds <= config_.protocol.collection_deadline_sec;
        if (accepted) {
          accepted =
              server_.AddLocalModelBytes(DeliveredPayload(
                  *ctx_.transport, up)) == DecodeStatus::kOk;
        }
        if (accepted) {
          ++result_.sites_reporting;
          result_.num_representatives +=
              site.local_model().representatives.size();
        } else {
          result_.failed_site_ids.push_back(site.site_id());
        }
      }
    }
    result_.sites_failed = config_.num_sites - result_.sites_reporting;
  });
}

void DbdcEngine::MergeGlobal() {
  RunStage(StageId::kMergeGlobal, [this] {
    server_.SetGlobalStrategy(global_strategy_);
    server_.BuildGlobal();
    result_.global_seconds = server_.global_clustering_seconds();
    result_.eps_global_used = server_.global_model().eps_global_used;
  });
}

void DbdcEngine::Broadcast() {
  RunStage(StageId::kBroadcast, [this] {
    global_bytes_ = server_.EncodeGlobalModelBytes();
    received_.assign(sites_.size(), std::nullopt);
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (!config_.protocol.enabled) {
        ctx_.transport->Send(kServerEndpoint, sites_[i].site_id(),
                             global_bytes_);
        received_[i] = global_bytes_;
      } else {
        const TransferOutcome down = ctx_.channel->Transfer(
            kServerEndpoint, sites_[i].site_id(), global_bytes_);
        AccumulateProtocolCounters(down, &result_);
        if (!down.delivered) continue;
        received_[i] = DeliveredPayload(*ctx_.transport, down);
      }
    }
  });
}

void DbdcEngine::Relabel() {
  RunStage(StageId::kRelabel, [this] {
    // The representative index is built once (over the server's model —
    // byte-identical to every decoded broadcast copy) and shared by all
    // sites' relabel passes. Points of sites the broadcast did not reach
    // keep kNoise.
    const RelabelContext relabel_context(server_.global_model(), *metric_);
    result_.labels.assign(data_->size(), kNoise);
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (!received_[i].has_value()) continue;
      Site& site = sites_[i];
      const DecodeStatus status =
          site.ApplyGlobalModelBytes(*received_[i], &relabel_context);
      if (!config_.protocol.enabled) {
        DBDC_CHECK(status == DecodeStatus::kOk &&
                   "global model payload failed to decode");
      } else if (status != DecodeStatus::kOk) {
        continue;
      }
      ++result_.sites_relabeled;
      result_.max_relabel_seconds =
          std::max(result_.max_relabel_seconds, site.relabel_seconds());
      const std::vector<ClusterId>& labels = site.global_labels();
      for (std::size_t j = 0; j < labels.size(); ++j) {
        result_.labels[site.origin_ids()[j]] = labels[j];
      }
    }
  });
}

DbdcResult DbdcEngine::Run() {
  Partition();
  LocalCluster();
  BuildLocalModel();
  Transmit();
  MergeGlobal();
  Broadcast();
  Relabel();
  return TakeResult();
}

DbdcResult DbdcEngine::TakeResult() {
  DBDC_CHECK(next_stage_ == kNumStages && "pipeline has not finished");
  DBDC_CHECK(!result_taken_ && "TakeResult may be called once");
  result_taken_ = true;
  result_.num_global_clusters = server_.global_model().num_global_clusters;
  result_.bytes_uplink = ctx_.transport->BytesUplink();
  result_.bytes_downlink = ctx_.transport->BytesDownlink();
  result_.global_model = server_.global_model();
  result_.stage_stats = ctx_.stages;
  // Tier gauge before Snapshot() so the snapshot carries it too.
  const simd::Tier tier = simd::ActiveTier();
  obs::SetGauge(obs::Gauge::kSimdTier,
                static_cast<double>(static_cast<int>(tier)));
  result_.simd_tier = std::string(simd::TierName(tier));
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    result_.metrics_snapshot = metrics->Snapshot();
  }
  return std::move(result_);
}

ContinuousDbdc::ContinuousDbdc(const Metric& metric,
                               const GlobalModelParams& params,
                               const ProtocolConfig& protocol,
                               Transport* network)
    : protocol_(protocol), server_(metric, params) {
  DBDC_ASSERT(ValidateProtocolConfig(protocol, "protocol").ok &&
              "invalid ProtocolConfig; call ValidateProtocolConfig for "
              "the field");
  ctx_.transport = network != nullptr ? network : &own_network_;
  if (protocol_.enabled) {
    ctx_.channel.emplace(ctx_.transport, protocol_);
  }
}

void ContinuousDbdc::AttachSite(StreamingSite* site) {
  DBDC_CHECK(site != nullptr);
  for (const StreamingSite* existing : sites_) {
    DBDC_CHECK(existing->site_id() != site->site_id() &&
               "duplicate streaming site id");
  }
  sites_.push_back(site);
  labels_.emplace_back();
}

int ContinuousDbdc::Tick() {
  // Anchor the tracer's virtual cursor at this tick's start so the
  // transfers it triggers lay out from the stream's current virtual time.
  if (obs::Tracer* tracer = obs::GlobalTracer()) {
    tracer->SetVirtualNow(ctx_.virtual_now_sec);
  }
  obs::ScopedSpan span("continuous.tick", "continuous");
  span.AddArg("tick", static_cast<std::int64_t>(stats_.ticks));

  int applied = 0;
  double tick_transfer_sec = 0.0;

  // Uplink leg: stale sites push a refreshed model; the server replaces
  // that site's previous contribution (upsert).
  for (StreamingSite* site : sites_) {
    if (!site->ModelNeedsRefresh()) continue;
    site->RefreshModel();
    std::vector<std::uint8_t> bytes = site->EncodeLocalModelBytes();
    ++stats_.refreshes_sent;
    obs::Count(obs::Counter::kRefreshesSent);
    bool ok = false;
    if (protocol_.enabled) {
      const TransferOutcome up = ctx_.channel->Transfer(
          site->site_id(), kServerEndpoint, std::move(bytes));
      stats_.protocol_retries += static_cast<std::uint64_t>(up.retries);
      tick_transfer_sec = std::max(tick_transfer_sec, up.elapsed_seconds);
      if (up.delivered &&
          up.delivered_seconds <= protocol_.collection_deadline_sec) {
        ok = server_.UpsertLocalModelBytes(DeliveredPayload(
                 *ctx_.transport, up)) == DecodeStatus::kOk;
      }
    } else {
      const std::size_t index = ctx_.transport->Send(
          site->site_id(), kServerEndpoint, std::move(bytes));
      if (index != kMessageDropped) {
        const NetworkMessage& msg = ctx_.transport->Message(index);
        ok = server_.UpsertLocalModelBytes(msg.payload) == DecodeStatus::kOk;
        tick_transfer_sec = std::max(
            tick_transfer_sec,
            EstimateTransferSeconds(msg.payload.size(), protocol_.link) +
                ctx_.transport->DeliveryDelaySeconds(index));
      }
    }
    if (ok) {
      ++stats_.refreshes_applied;
      obs::Count(obs::Counter::kRefreshesApplied);
      ++applied;
    } else {
      // The site's previous model stays in effect; the stream self-heals
      // on its next refresh.
      ++stats_.refreshes_lost;
      obs::Count(obs::Counter::kRefreshesLost);
    }
  }

  // Merge + downlink leg, only when something actually changed: quiet
  // ticks cost zero bytes and zero global rebuilds.
  if (applied > 0) {
    server_.BuildGlobal();
    ++stats_.global_rebuilds;
    obs::Count(obs::Counter::kGlobalRebuilds);
    const std::vector<std::uint8_t> global_bytes =
        server_.EncodeGlobalModelBytes();
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      std::optional<std::vector<std::uint8_t>> received;
      if (protocol_.enabled) {
        const TransferOutcome down = ctx_.channel->Transfer(
            kServerEndpoint, sites_[i]->site_id(), global_bytes);
        stats_.protocol_retries += static_cast<std::uint64_t>(down.retries);
        tick_transfer_sec =
            std::max(tick_transfer_sec, down.elapsed_seconds);
        if (down.delivered) {
          received = DeliveredPayload(*ctx_.transport, down);
        }
      } else {
        const std::size_t index = ctx_.transport->Send(
            kServerEndpoint, sites_[i]->site_id(), global_bytes);
        if (index != kMessageDropped) {
          const NetworkMessage& msg = ctx_.transport->Message(index);
          received = msg.payload;
          tick_transfer_sec = std::max(
              tick_transfer_sec,
              EstimateTransferSeconds(msg.payload.size(), protocol_.link) +
                  ctx_.transport->DeliveryDelaySeconds(index));
        }
      }
      const bool relabeled =
          received.has_value() &&
          sites_[i]->ApplyGlobalModelBytes(*received, &labels_[i]) ==
              DecodeStatus::kOk;
      if (relabeled) {
        ++stats_.broadcasts_delivered;
      } else {
        ++stats_.broadcasts_lost;
      }
    }
  }

  ctx_.virtual_now_sec += tick_transfer_sec;
  ++stats_.ticks;
  obs::Count(obs::Counter::kContinuousTicks);
  if (obs::MetricsRegistry* metrics = obs::GlobalMetrics()) {
    metrics->SetGauge(obs::Gauge::kVirtualClockSec, ctx_.virtual_now_sec);
  }
  return applied;
}

}  // namespace dbdc
