# Empty compiler generated dependencies file for dbdc_distrib.
# This may be replaced when dependencies are built.
