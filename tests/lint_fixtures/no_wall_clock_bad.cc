// Seeded violation: ambient wall-clock reads in library code. A path
// timed with steady_clock diverges between runs and machines, breaking
// the bit-identical determinism contract (DESIGN.md §10).
#include <chrono>

namespace dbdc {

double BadElapsedSeconds() {
  const auto start = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now().time_since_epoch();
  const auto hi = std::chrono::high_resolution_clock::now();
  (void)hi;
  (void)wall;
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace dbdc
