#ifndef DBDC_COMMON_CHECK_H_
#define DBDC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Runtime contract layer.
///
/// Two macro families, mirroring the usual CHECK/DCHECK split:
///
///   DBDC_ASSERT(cond)  — always active, in every build type. For contract
///     violations that indicate programming errors (never for recoverable
///     conditions: the library is exception-free and decoders signal bad
///     input by returning nullopt). Aborts with file:line and the failed
///     expression.
///
///   DBDC_DCHECK(cond)  — active in Debug builds and in builds configured
///     with -DDBDC_DCHECKS=ON (the sanitizer presets do this so ASan/TSan
///     runs also exercise the expensive invariant validators). Compiled out
///     entirely in plain Release builds: the condition is not evaluated.
///
/// DBDC_DCHECK_IS_ON() gates whole validation passes (for example the
/// O(n·query) DBSCAN postcondition sweep) that would be too expensive even
/// as a dead conditional in a hot loop.
///
/// Both macros support the `cond && "message"` idiom for context:
///   DBDC_ASSERT(ok && "local model payload failed to decode");

#if !defined(NDEBUG) || defined(DBDC_FORCE_DCHECKS)
#define DBDC_DCHECK_IS_ON() 1
#else
#define DBDC_DCHECK_IS_ON() 0
#endif

namespace dbdc {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* kind, const char* file,
                                     int line, const char* expr) {
  std::fprintf(stderr, "%s failed at %s:%d: %s\n", kind, file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dbdc

#define DBDC_ASSERT(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dbdc::internal::CheckFailed("DBDC_ASSERT", __FILE__, __LINE__,       \
                                    #cond);                                  \
    }                                                                        \
  } while (0)

#if DBDC_DCHECK_IS_ON()
#define DBDC_DCHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dbdc::internal::CheckFailed("DBDC_DCHECK", __FILE__, __LINE__,       \
                                    #cond);                                  \
    }                                                                        \
  } while (0)
#else
#define DBDC_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

/// Legacy spelling, kept so existing call sites keep compiling; new code
/// uses DBDC_ASSERT (always on) or DBDC_DCHECK (debug only).
#define DBDC_CHECK(cond) DBDC_ASSERT(cond)

#endif  // DBDC_COMMON_CHECK_H_
