#ifndef DBDC_CORE_STAGE_STATS_H_
#define DBDC_CORE_STAGE_STATS_H_

#include <cstdint>
#include <string_view>

namespace dbdc {

/// The seven explicit stages of the DBDC pipeline as the engine runs it
/// (DESIGN.md §8). The order of the enumerators is the pipeline order.
enum class StageId {
  kPartition = 0,       // Horizontal distribution onto the sites.
  kLocalCluster,        // Independent local DBSCAN per site.
  kBuildLocalModel,     // REP_Scor / REP_kMeans (+ condensation) per site.
  kTransmit,            // Local models cross the uplink to the server.
  kMergeGlobal,         // Server-side global model construction.
  kBroadcast,           // Global model crosses the downlink to the sites.
  kRelabel,             // Sites relabel their objects against the model.
};

inline constexpr int kNumStages = 7;

/// Stable lower-case name for logs, tables, and the bench JSON.
inline std::string_view StageName(StageId stage) {
  switch (stage) {
    case StageId::kPartition: return "partition";
    case StageId::kLocalCluster: return "local_cluster";
    case StageId::kBuildLocalModel: return "build_local_model";
    case StageId::kTransmit: return "transmit";
    case StageId::kMergeGlobal: return "merge_global";
    case StageId::kBroadcast: return "broadcast";
    case StageId::kRelabel: return "relabel";
  }
  return "unknown";
}

/// Per-stage breakdown the engine emits into DbdcResult: wall-clock
/// seconds spent in the stage and the transport bytes the stage put on
/// the wire (deltas of the Transport counters, so protocol overhead and
/// retransmissions are charged to the stage that caused them — acks to a
/// received frame count against the transfer's stage, whichever
/// direction they travel).
struct StageStats {
  StageId stage = StageId::kPartition;
  double seconds = 0.0;
  std::uint64_t bytes_uplink = 0;
  std::uint64_t bytes_downlink = 0;
};

/// Per-level breakdown of a run over an aggregation topology
/// (DESIGN.md §13), one entry per tree level in root-first order. Level
/// 0 is the root server; level k holds the endpoints k hops below it
/// (aggregators and/or sites). A flat run has exactly two levels: the
/// root and the sites.
struct LevelStats {
  int level = 0;
  /// Endpoints at this level (the root counts as one node at level 0).
  int nodes = 0;
  /// Endpoints at this level whose uplink hop failed (dead link,
  /// deadline, retry budget exhausted, or nothing to send because every
  /// child already failed) — the loss is counted at the level where the
  /// failing hop started.
  int nodes_failed = 0;
  /// Models ingested by the mergers at this level (the root's count is
  /// its fan-in — bounded by the fanout, not the site count).
  int models_in = 0;
  /// Representatives carried by those models.
  std::size_t representatives_in = 0;
  /// Payload bytes arriving at this level's mergers on the uplink leg.
  std::uint64_t bytes_in = 0;
  /// Wall-clock seconds the mergers at this level spent merging (the
  /// root's entry is the MergeGlobal stage time).
  double merge_seconds = 0.0;
};

}  // namespace dbdc

#endif  // DBDC_CORE_STAGE_STATS_H_
