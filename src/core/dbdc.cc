#include "core/dbdc.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/optics_global.h"

namespace dbdc {

ConfigStatus ValidateProtocolConfig(const ProtocolConfig& protocol,
                                    const std::string& field_prefix) {
  if (protocol.max_attempts < 1) {
    return ConfigStatus::Invalid(field_prefix + ".max_attempts",
                                 "must be >= 1");
  }
  if (!(protocol.retry_backoff_sec >= 0.0)) {  // Rejects NaN too.
    return ConfigStatus::Invalid(field_prefix + ".retry_backoff_sec",
                                 "must be >= 0");
  }
  if (!(protocol.collection_deadline_sec > 0.0)) {
    return ConfigStatus::Invalid(field_prefix + ".collection_deadline_sec",
                                 "must be > 0 (infinity = no deadline)");
  }
  if (!(protocol.link.bandwidth_bytes_per_sec > 0.0)) {
    return ConfigStatus::Invalid(
        field_prefix + ".link.bandwidth_bytes_per_sec", "must be > 0");
  }
  if (!(protocol.link.latency_sec >= 0.0)) {
    return ConfigStatus::Invalid(field_prefix + ".link.latency_sec",
                                 "must be >= 0");
  }
  return ConfigStatus::Ok();
}

ConfigStatus DbdcConfig::Validate() const {
  // Negated comparisons throughout so NaN fails the check it belongs to
  // instead of slipping past a `<`.
  if (!(local_dbscan.eps > 0.0)) {
    return ConfigStatus::Invalid("local_dbscan.eps", "must be > 0");
  }
  if (local_dbscan.min_pts < 1) {
    return ConfigStatus::Invalid("local_dbscan.min_pts", "must be >= 1");
  }
  if (local_dbscan.threads < 0) {
    return ConfigStatus::Invalid("local_dbscan.threads",
                                 "must be >= 0 (0 = hardware concurrency)");
  }
  if (!(eps_global >= 0.0)) {
    return ConfigStatus::Invalid("eps_global",
                                 "must be >= 0 (0 = the paper's default)");
  }
  if (!(condense_eps >= 0.0)) {
    return ConfigStatus::Invalid("condense_eps",
                                 "must be >= 0 (0 = no condensation)");
  }
  if (num_sites < 1) {
    return ConfigStatus::Invalid("num_sites", "must be >= 1");
  }
  if (num_threads < 0) {
    return ConfigStatus::Invalid("num_threads",
                                 "must be >= 0 (0 = hardware concurrency)");
  }
  if (kmeans.max_iterations < 1) {
    return ConfigStatus::Invalid("kmeans.max_iterations", "must be >= 1");
  }
  if (!(kmeans.tolerance >= 0.0)) {
    return ConfigStatus::Invalid("kmeans.tolerance", "must be >= 0");
  }
  if (!(optics.max_eps_global >= 0.0)) {
    return ConfigStatus::Invalid("optics.max_eps_global",
                                 "must be >= 0 (0 = 4x Eps_global)");
  }
  if (approx.num_projections < 1) {
    return ConfigStatus::Invalid("approx.num_projections", "must be >= 1");
  }
  if (!(approx.cell_width_factor > 0.0) ||
      !std::isfinite(approx.cell_width_factor)) {
    return ConfigStatus::Invalid("approx.cell_width_factor",
                                 "must be positive and finite");
  }
  if (!(approx.window_scale > 0.0) || !std::isfinite(approx.window_scale)) {
    return ConfigStatus::Invalid("approx.window_scale",
                                 "must be positive and finite "
                                 "(1.0 = full recall)");
  }
  switch (topology.kind) {
    case TopologyKind::kFlat:
      if (topology.fanout != 0) {
        return ConfigStatus::Invalid("topology.fanout",
                                     "must be 0 for the flat topology");
      }
      break;
    case TopologyKind::kTree:
      if (topology.fanout < 2) {
        return ConfigStatus::Invalid("topology.fanout",
                                     "must be >= 2 for the tree topology");
      }
      break;
    case TopologyKind::kExplicit:
      if (explicit_topology == nullptr) {
        return ConfigStatus::Invalid(
            "explicit_topology",
            "must be set for the explicit topology kind");
      }
      if (explicit_topology->num_sites() != num_sites) {
        return ConfigStatus::Invalid("explicit_topology",
                                     "must cover exactly num_sites sites");
      }
      if (const std::string problem = explicit_topology->Validate();
          !problem.empty()) {
        return ConfigStatus::Invalid("explicit_topology", problem);
      }
      break;
  }
  if (topology.kind != TopologyKind::kExplicit &&
      explicit_topology != nullptr) {
    return ConfigStatus::Invalid(
        "explicit_topology",
        "only valid with topology.kind = kExplicit");
  }
  if (!(topology.aggregator_condense_eps >= 0.0)) {
    return ConfigStatus::Invalid("topology.aggregator_condense_eps",
                                 "must be >= 0 (0 = lossless aggregation)");
  }
  return ValidateProtocolConfig(protocol, "protocol");
}

DbdcResult RunDbdc(const Dataset& data, const Metric& metric,
                   const DbdcConfig& config, Transport* network) {
  DBDC_ASSERT(config.Validate().ok &&
              "invalid DbdcConfig; call Validate() for the field");
  DbdcEngine engine(data, metric, config, network);
  return engine.Run();
}

DbdcResult RunDbdcOptics(const Dataset& data, const Metric& metric,
                         const DbdcConfig& config, Transport* network) {
  DBDC_ASSERT(config.Validate().ok &&
              "invalid DbdcConfig; call Validate() for the field");
  const OpticsGlobalStrategy strategy(config.optics.max_eps_global);
  DbdcEngine engine(data, metric, config, network);
  engine.SetGlobalModelStrategy(&strategy);
  return engine.Run();
}

DbdcResult RunDbdcOptics(const Dataset& data, const Metric& metric,
                         const DbdcConfig& config, Transport* network,
                         double max_eps_global) {
  DbdcConfig forwarded = config;
  forwarded.optics.max_eps_global = max_eps_global;
  return RunDbdcOptics(data, metric, forwarded, network);
}

CentralDbscanResult RunCentralDbscan(const Dataset& data, const Metric& metric,
                                     const DbscanParams& params,
                                     IndexType index_type,
                                     const ApproxIndexOptions& approx) {
  Timer timer;
  const std::unique_ptr<NeighborIndex> index =
      CreateIndex(index_type, data, metric, params.eps, approx);
  CentralDbscanResult result;
  result.clustering = RunDbscan(*index, params);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace dbdc
