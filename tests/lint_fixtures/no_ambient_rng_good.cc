// Clean variant: randomness comes from an explicit seeded dbdc::Rng.
// Identifiers that merely contain the forbidden substrings (operand,
// random_device_count as a comment topic) must not fire.
#include "common/rng.h"

namespace dbdc {

double GoodRandomDraw(std::uint64_t seed) {
  Rng rng(seed);
  const double operand = rng.Uniform(0.0, 1.0);
  return operand + rng.Gaussian(0.0, 1.0);
}

}  // namespace dbdc
