// Clean variant: time flows through the Timer abstraction and through
// explicit virtual-clock parameters; mentioning a clock in a comment
// (steady_clock) or a string must not fire either.
#include <string>

#include "common/timer.h"

namespace dbdc {

double GoodElapsedSeconds() {
  Timer timer;
  const std::string note = "steady_clock is fine inside a string literal";
  (void)note;
  return timer.Seconds();
}

/// Virtual time is advanced by the simulation, never read from the host.
double AdvanceVirtual(double now_sec, double transfer_sec) {
  return now_sec + transfer_sec;
}

}  // namespace dbdc
