#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "cluster/optics.h"
#include "data/generators.h"
#include "index/linear_scan_index.h"
#include "test_util.h"
#include "viz/render.h"

namespace dbdc {
namespace {

TEST(AsciiScatterTest, DimensionsAndClusterGlyphs) {
  Dataset data(2);
  std::vector<ClusterId> labels;
  Rng rng(1);
  AppendBlob({{0.0, 0.0}, 0.5, 50}, 0, &rng, &data, &labels);
  AppendBlob({{10.0, 10.0}, 0.5, 50}, 1, &rng, &data, &labels);
  data.Add(Point{5.0, 5.0});
  labels.push_back(kNoise);

  const std::string plot = AsciiScatter(data, labels, 40, 12);
  // 12 lines of exactly 40 characters.
  int lines = 0;
  std::size_t pos = 0;
  while (pos < plot.size()) {
    const std::size_t next = plot.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, 40u);
    pos = next + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 12);
  EXPECT_NE(plot.find('a'), std::string::npos);
  EXPECT_NE(plot.find('b'), std::string::npos);
  EXPECT_NE(plot.find('.'), std::string::npos);
}

TEST(AsciiScatterTest, EmptyAndUnlabeled) {
  Dataset empty(2);
  EXPECT_NE(AsciiScatter(empty, {}).find("empty"), std::string::npos);
  Dataset data(2);
  data.Add(Point{1.0, 1.0});
  const std::string plot = AsciiScatter(data, {}, 10, 4);
  EXPECT_NE(plot.find('o'), std::string::npos);
}

TEST(WriteScatterPpmTest, ProducesAValidP6Header) {
  const SyntheticDataset synth = MakeTestDatasetC(1);
  const std::string path = ::testing::TempDir() + "/scatter.ppm";
  ASSERT_TRUE(WriteScatterPpm(path, synth.data, synth.true_labels, 80, 60));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::string magic;
  int width = 0, height = 0, maxval = 0;
  in >> magic >> width >> height >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(width, 80);
  EXPECT_EQ(height, 60);
  EXPECT_EQ(maxval, 255);
  in.get();  // The single whitespace after the header.
  std::string pixels((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(pixels.size(), 80u * 60u * 3u);
}

TEST(WriteScatterPpmTest, UnwritablePathFails) {
  Dataset data(2);
  data.Add(Point{0.0, 0.0});
  EXPECT_FALSE(
      WriteScatterPpm("/nonexistent-dir/x.ppm", data, {}, 10, 10));
}

TEST(AsciiReachabilityPlotTest, ShowsTheClusterValleys) {
  Dataset data(2);
  Rng rng(2);
  std::vector<ClusterId> unused;
  AppendBlob({{0.0, 0.0}, 0.3, 60}, 0, &rng, &data, &unused);
  AppendBlob({{30.0, 0.0}, 0.3, 60}, 1, &rng, &data, &unused);
  const LinearScanIndex index(data, Euclidean());
  const OpticsResult optics = RunOptics(index, {100.0, 5});
  const std::string plot = AsciiReachabilityPlot(optics, 60, 10);
  // 10 bar rows + baseline.
  EXPECT_EQ(std::count(plot.begin(), plot.end(), '\n'), 11);
  EXPECT_NE(plot.find('#'), std::string::npos);
  // The bottom row is almost entirely filled (every point has some bar),
  // while the top row holds only the undefined/jump columns.
  const std::size_t first_row_hashes =
      std::count(plot.begin(), plot.begin() + 61, '#');
  EXPECT_LT(first_row_hashes, 10u);
}

TEST(AsciiReachabilityPlotTest, EmptyOrdering) {
  OpticsResult empty;
  EXPECT_NE(AsciiReachabilityPlot(empty).find("empty"), std::string::npos);
}

}  // namespace
}  // namespace dbdc
