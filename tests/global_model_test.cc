#include <gtest/gtest.h>

#include <vector>

#include "core/global_model.h"

namespace dbdc {
namespace {

LocalModel MakeModel(int site, std::vector<Representative> reps) {
  LocalModel model;
  model.site_id = site;
  model.dim = reps.empty() ? 0 : static_cast<int>(reps[0].center.size());
  model.representatives = std::move(reps);
  int max_cluster = -1;
  for (const Representative& r : model.representatives) {
    max_cluster = std::max(max_cluster, r.local_cluster);
  }
  model.num_local_clusters = max_cluster + 1;
  return model;
}

Representative Rep(double x, double y, double eps, ClusterId cluster = 0) {
  return Representative{{x, y}, eps, cluster};
}

TEST(GlobalModelTest, DefaultEpsGlobalIsMaxEpsRange) {
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0, 0, 1.5), Rep(5, 0, 1.9)}),
      MakeModel(1, {Rep(9, 0, 1.2)}),
  };
  EXPECT_DOUBLE_EQ(DefaultEpsGlobal(locals), 1.9);
}

TEST(GlobalModelTest, FigureFourScenario) {
  // Fig. 4: four representatives of clusters found on 3 sites, spaced so
  // that Eps_global = Eps_local finds no connection but Eps_global =
  // 2·Eps_local merges all four into one global cluster.
  const double eps_local = 1.0;
  // R1, R2 from site 1; R3 from site 2; R4 from site 3 — consecutive
  // distances of 1.8 (> eps_local, <= 2*eps_local).
  const std::vector<LocalModel> locals = {
      MakeModel(1, {Rep(0.0, 0.0, 2 * eps_local, 0),
                    Rep(1.8, 0.0, 2 * eps_local, 0)}),
      MakeModel(2, {Rep(3.6, 0.0, 2 * eps_local, 0)}),
      MakeModel(3, {Rep(5.4, 0.0, 2 * eps_local, 0)}),
  };

  GlobalModelParams params;
  params.eps_global = eps_local;  // Fig. 4c (VIII): insufficient.
  const GlobalModel narrow = BuildGlobalModel(locals, Euclidean(), params);
  EXPECT_EQ(narrow.num_global_clusters, 4);  // All stay singletons.

  params.eps_global = 2 * eps_local;  // Fig. 4c (IX): one large cluster.
  const GlobalModel wide = BuildGlobalModel(locals, Euclidean(), params);
  EXPECT_EQ(wide.num_global_clusters, 1);
  for (const ClusterId c : wide.rep_global_cluster) EXPECT_EQ(c, 0);
  EXPECT_DOUBLE_EQ(wide.eps_global_used, 2 * eps_local);
}

TEST(GlobalModelTest, DefaultEpsGlobalAppliedWhenZero) {
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0, 0, 2.0, 0)}),
      MakeModel(1, {Rep(1.9, 0, 1.5, 0)}),
  };
  GlobalModelParams params;  // eps_global = 0 -> default max ε_R = 2.0.
  const GlobalModel global = BuildGlobalModel(locals, Euclidean(), params);
  EXPECT_DOUBLE_EQ(global.eps_global_used, 2.0);
  EXPECT_EQ(global.num_global_clusters, 1);  // 1.9 <= 2.0: merged.
}

TEST(GlobalModelTest, UnmergedRepresentativesKeepSingletonClusters) {
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0, 0, 1.0, 0), Rep(0.5, 0, 1.0, 1)}),
      MakeModel(1, {Rep(100, 100, 1.0, 0)}),
  };
  GlobalModelParams params;
  params.eps_global = 1.0;
  const GlobalModel global = BuildGlobalModel(locals, Euclidean(), params);
  // Two nearby reps merge; the remote one keeps its own global cluster.
  EXPECT_EQ(global.num_global_clusters, 2);
  EXPECT_EQ(global.rep_global_cluster[0], global.rep_global_cluster[1]);
  EXPECT_NE(global.rep_global_cluster[0], global.rep_global_cluster[2]);
}

TEST(GlobalModelTest, MergesRepresentativesAcrossSites) {
  // Halves of one cluster split over two sites: their representatives are
  // within 2·eps of each other and must reunite globally.
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(10.0, 10.0, 2.0, 0)}),
      MakeModel(1, {Rep(11.5, 10.0, 2.0, 0)}),
  };
  GlobalModelParams params;
  const GlobalModel global = BuildGlobalModel(locals, Euclidean(), params);
  EXPECT_EQ(global.num_global_clusters, 1);
  EXPECT_EQ(global.rep_site[0], 0);
  EXPECT_EQ(global.rep_site[1], 1);
}

TEST(GlobalModelTest, EmptyInputsProduceEmptyModel) {
  const std::vector<LocalModel> locals;
  GlobalModelParams params;
  params.eps_global = 1.0;
  const GlobalModel global = BuildGlobalModel(locals, Euclidean(), params);
  EXPECT_EQ(global.NumRepresentatives(), 0u);
  EXPECT_EQ(global.num_global_clusters, 0);

  // Sites that found nothing transmit empty models.
  const std::vector<LocalModel> empty_sites = {MakeModel(0, {}),
                                               MakeModel(1, {})};
  const GlobalModel global2 =
      BuildGlobalModel(empty_sites, Euclidean(), params);
  EXPECT_EQ(global2.NumRepresentatives(), 0u);
}

TEST(GlobalModelTest, WeightedCoreConditionSuppressesLightweightBridges) {
  // Two heavy representative pairs (weight 50 each — real clusters)
  // connected by a chain of two feather-weight representatives (weight 1
  // — tiny spurious local clusters). Unweighted MinPts_global = 2 merges
  // everything through the chain; the weighted condition keeps the two
  // heavy clusters apart because the chain links never reach the weight
  // threshold, so density-reachability breaks at the bridge.
  auto weighted_rep = [](double x, std::uint32_t weight) {
    Representative rep = Rep(x, 0.0, 1.0, 0);
    rep.weight = weight;
    return rep;
  };
  const std::vector<LocalModel> locals = {
      MakeModel(0, {weighted_rep(0.0, 50), weighted_rep(0.5, 50)}),
      MakeModel(1, {weighted_rep(1.5, 1), weighted_rep(2.5, 1)}),
      MakeModel(2, {weighted_rep(3.5, 50), weighted_rep(4.0, 50)}),
  };

  GlobalModelParams unweighted;
  unweighted.eps_global = 1.0;
  const GlobalModel plain = BuildGlobalModel(locals, Euclidean(), unweighted);
  EXPECT_EQ(plain.num_global_clusters, 1);  // Merged through the chain.

  GlobalModelParams weighted = unweighted;
  weighted.min_weight_global = 60;
  const GlobalModel strict = BuildGlobalModel(locals, Euclidean(), weighted);
  // Chain links see at most weight 52 in their neighborhoods -> not
  // core; each heavy pair sees 100+ -> core. Two global clusters, the
  // chain reps become border/singleton.
  EXPECT_GE(strict.num_global_clusters, 2);
  EXPECT_NE(strict.rep_global_cluster[0], strict.rep_global_cluster[4]);
  EXPECT_EQ(strict.rep_global_cluster[0], strict.rep_global_cluster[1]);
  EXPECT_EQ(strict.rep_global_cluster[4], strict.rep_global_cluster[5]);
}

TEST(GlobalModelTest, WeightedConditionEquivalentToPlainWithUnitWeights) {
  // All weights 1 and min_weight = min_pts: identical result.
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0.0, 0.0, 1.0, 0), Rep(0.8, 0.0, 1.0, 1)}),
      MakeModel(1, {Rep(5.0, 0.0, 1.0, 0)}),
  };
  GlobalModelParams plain;
  plain.eps_global = 1.0;
  GlobalModelParams weighted = plain;
  weighted.min_weight_global = 2;
  const GlobalModel a = BuildGlobalModel(locals, Euclidean(), plain);
  const GlobalModel b = BuildGlobalModel(locals, Euclidean(), weighted);
  EXPECT_EQ(a.num_global_clusters, b.num_global_clusters);
  EXPECT_EQ(a.rep_global_cluster, b.rep_global_cluster);
}

TEST(GlobalModelTest, CarriesRepresentativeWeights) {
  LocalModel model = MakeModel(0, {Rep(0.0, 0.0, 1.0, 0)});
  model.representatives[0].weight = 17;
  GlobalModelParams params;
  params.eps_global = 1.0;
  const GlobalModel global =
      BuildGlobalModel(std::vector<LocalModel>{model}, Euclidean(), params);
  ASSERT_EQ(global.rep_weight.size(), 1u);
  EXPECT_EQ(global.rep_weight[0], 17u);
}

TEST(GlobalModelTest, MinPtsGlobalOfTwoMergesAnyTouchingPair) {
  // With MinPts_global = 2, two representatives within eps_global are
  // both core and merge — the paper's argument that each representative
  // already stands for a cluster.
  const std::vector<LocalModel> locals = {
      MakeModel(0, {Rep(0, 0, 1.0, 0)}),
      MakeModel(1, {Rep(0.9, 0, 1.0, 0)}),
  };
  GlobalModelParams params;
  params.eps_global = 1.0;
  const GlobalModel global = BuildGlobalModel(locals, Euclidean(), params);
  EXPECT_EQ(global.num_global_clusters, 1);
}

}  // namespace
}  // namespace dbdc
