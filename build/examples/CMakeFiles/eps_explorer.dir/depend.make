# Empty dependencies file for eps_explorer.
# This may be replaced when dependencies are built.
