#include "distrib/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/checksum.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbdc {
namespace {

constexpr std::uint32_t kFrameMagic = 0x50464244u;  // 'DBFP' little-endian.
// magic + type + seq + payload_size + trailing checksum.
constexpr std::size_t kFrameOverhead = 4 + 1 + 4 + 4 + 8;

template <typename T>
void PutRaw(std::vector<std::uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = out->size();
  out->resize(offset + sizeof(T));
  std::memcpy(out->data() + offset, &value, sizeof(T));
}

template <typename T>
bool GetRaw(std::span<const std::uint8_t> bytes, std::size_t* pos, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*pos + sizeof(T) > bytes.size()) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::size_t FrameOverheadBytes() { return kFrameOverhead; }

std::vector<std::uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameOverhead + frame.payload.size());
  PutRaw(&out, kFrameMagic);
  PutRaw(&out, static_cast<std::uint8_t>(frame.type));
  PutRaw(&out, frame.seq);
  PutRaw(&out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  PutRaw(&out, Fnv1a64(out));
  return out;
}

std::optional<Frame> DecodeFrame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameOverhead) return std::nullopt;
  // Verify the trailing checksum over everything before it first: any
  // in-transit flip — header or payload — invalidates the frame.
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 8, 8);
  if (Fnv1a64(bytes.first(bytes.size() - 8)) != stored) return std::nullopt;

  std::size_t pos = 0;
  std::uint32_t magic = 0, seq = 0, payload_size = 0;
  std::uint8_t type = 0;
  if (!GetRaw(bytes, &pos, &magic) || magic != kFrameMagic) {
    return std::nullopt;
  }
  if (!GetRaw(bytes, &pos, &type) || type > 1) return std::nullopt;
  if (!GetRaw(bytes, &pos, &seq) || !GetRaw(bytes, &pos, &payload_size)) {
    return std::nullopt;
  }
  if (bytes.size() != kFrameOverhead + payload_size) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.seq = seq;
  frame.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                       bytes.end() - 8);
  return frame;
}

FrameAssembler::FrameAssembler(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameAssembler::Append(std::span<const std::uint8_t> bytes) {
  if (corrupted_) return;
  // Compact once the dead prefix dominates, so a long-lived session does
  // not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameAssembler::Next() {
  if (corrupted_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  // Header = magic(4) + type(1) + seq(4) + payload_size(4); the size
  // field is the last header word, so 13 bytes tell us the frame length.
  constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 4;
  if (available < kHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  std::uint32_t magic = 0;
  std::memcpy(&magic, head, 4);
  if (magic != kFrameMagic) {
    corrupted_ = true;
    return std::nullopt;
  }
  std::uint32_t payload_size = 0;
  std::memcpy(&payload_size, head + 9, 4);
  if (payload_size > max_frame_bytes_) {
    corrupted_ = true;
    return std::nullopt;
  }
  const std::size_t total = FrameOverheadBytes() + payload_size;
  if (available < total) return std::nullopt;
  std::optional<Frame> frame =
      DecodeFrame(std::span<const std::uint8_t>(head, total));
  if (!frame.has_value()) {
    // Complete by length but failing checksum/structure: poisoned stream.
    corrupted_ = true;
    return std::nullopt;
  }
  consumed_ += total;
  return frame;
}

ReliableChannel::ReliableChannel(Transport* transport,
                                 const ProtocolConfig& config)
    : transport_(transport), config_(config) {
  DBDC_CHECK(transport != nullptr);
  DBDC_CHECK(config.max_attempts >= 1);
  DBDC_CHECK(config.retry_backoff_sec >= 0.0);
}

TransferOutcome ReliableChannel::Transfer(EndpointId from, EndpointId to,
                                          std::vector<std::uint8_t> payload) {
  TransferOutcome out;
  const std::uint32_t seq = next_seq_++;
  Frame data_frame;
  data_frame.type = FrameType::kData;
  data_frame.seq = seq;
  data_frame.payload = std::move(payload);
  const std::vector<std::uint8_t> data_bytes = EncodeFrame(data_frame);
  const std::vector<std::uint8_t> ack_bytes =
      EncodeFrame(Frame{FrameType::kAck, seq, {}});

  obs::Observe(obs::Histogram::kFramePayloadBytes, data_frame.payload.size());

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Ack timeout + exponential backoff before the retransmission,
      // computed by double scaling with a saturated exponent: an int
      // shift (1 << (attempt - 1)) is undefined behavior from attempt 32
      // on, and nothing bounds max_attempts below that. Past the cap the
      // backoff simply stops growing (~3.6e16 years at the default
      // 0.05 s base — saturation, not overflow).
      constexpr int kMaxBackoffExponent = 60;
      out.elapsed_seconds += std::ldexp(
          config_.retry_backoff_sec,
          std::min(attempt - 1, kMaxBackoffExponent));
      ++out.retries;
      ++stats_.retries;
      obs::Count(obs::Counter::kFramesRetried);
    }
    ++out.attempts;
    obs::Count(obs::Counter::kFramesSent);

    const std::size_t index = transport_->Send(from, to, data_bytes);
    out.elapsed_seconds +=
        EstimateTransferSeconds(data_bytes.size(), config_.link);
    if (index == kMessageDropped) {
      ++out.data_drops;
      ++stats_.data_drops;
      obs::Count(obs::Counter::kFramesDropped);
      continue;
    }
    out.elapsed_seconds += transport_->DeliveryDelaySeconds(index);

    // Receiver side: decode what actually arrived; a failed checksum
    // means discard without ack (the sender only sees the timeout).
    const std::optional<Frame> received =
        DecodeFrame(transport_->Message(index).payload);
    if (!received.has_value() || received->type != FrameType::kData ||
        received->seq != seq) {
      ++out.data_corruptions;
      ++stats_.data_corruptions;
      obs::Count(obs::Counter::kFramesCorrupted);
      continue;
    }
    if (!out.delivered) {
      out.delivered = true;
      out.delivered_index = index;
      out.delivered_seconds = out.elapsed_seconds;
    }

    // Ack leg (subject to the same faults; duplicates on the receiver are
    // deduplicated by seq, which the simulation gets for free).
    const std::size_t ack_index = transport_->Send(to, from, ack_bytes);
    out.elapsed_seconds +=
        EstimateTransferSeconds(ack_bytes.size(), config_.link);
    if (ack_index == kMessageDropped) {
      ++out.ack_losses;
      ++stats_.ack_losses;
      obs::Count(obs::Counter::kAcksLost);
      continue;
    }
    out.elapsed_seconds += transport_->DeliveryDelaySeconds(ack_index);
    const std::optional<Frame> ack =
        DecodeFrame(transport_->Message(ack_index).payload);
    if (!ack.has_value() || ack->type != FrameType::kAck || ack->seq != seq) {
      ++out.ack_losses;
      ++stats_.ack_losses;
      obs::Count(obs::Counter::kAcksLost);
      continue;
    }
    out.acked = true;
    break;
  }

  ++stats_.transfers;
  if (out.acked) ++stats_.acked;

  // Transfers live on the virtual clock (each starts its own at 0); the
  // tracer's virtual cursor lays them out end to end so a trace shows
  // the simulated wire time of the whole exchange, not a pile-up at 0.
  if (obs::Tracer* tracer = obs::GlobalTracer()) {
    std::vector<obs::SpanArg> args(5);
    args[0].key = "from";
    args[0].int_value = from;
    args[1].key = "to";
    args[1].int_value = to;
    args[2].key = "seq";
    args[2].int_value = static_cast<std::int64_t>(seq);
    args[3].key = "attempts";
    args[3].int_value = out.attempts;
    args[4].key = "acked";
    args[4].int_value = out.acked ? 1 : 0;
    tracer->RecordVirtualSpan("protocol.transfer", "protocol",
                              tracer->VirtualNow(), out.elapsed_seconds,
                              std::move(args));
    tracer->AdvanceVirtual(out.elapsed_seconds);
  }
  return out;
}

}  // namespace dbdc
