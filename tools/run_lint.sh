#!/usr/bin/env bash
# Runs the DBDC invariant linter (tools/dbdc_lint.py): first the fixture
# self-test proving every rule fires on its seeded violation and stays
# silent on the compliant twin, then a full lint of src/.
#
# Usage:
#   tools/run_lint.sh [BUILD_DIR]
#
# BUILD_DIR is optional; when it (or one of build-tidy/, build-release/,
# build/) contains a compile_commands.json, the linter uses that database
# to enumerate translation units and — when libclang python bindings are
# installed — to run the AST-level unchecked-status pass on top of the
# token-level rules. Without a build dir the linter falls back to globbing
# src/, so this script works on a pristine checkout.
#
# Exit status: 0 when the self-test passes and the tree has no findings,
# non-zero otherwise. Mirrors tools/run_tidy.sh.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

python_bin="${PYTHON:-}"
if [[ -z "$python_bin" ]]; then
  for candidate in python3 python; do
    if command -v "$candidate" >/dev/null 2>&1; then
      python_bin="$candidate"
      break
    fi
  done
fi
if [[ -z "$python_bin" ]]; then
  echo "run_lint.sh: no python interpreter found (set PYTHON=...);" \
       "skipping the lint pass." >&2
  exit 0
fi

build_dir=""
if [[ $# -gt 0 ]]; then
  build_dir="$1"
  shift
fi
if [[ -z "$build_dir" ]]; then
  for candidate in build-tidy build-release build; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi

echo "run_lint.sh: self-test ..." >&2
"$python_bin" tools/dbdc_lint.py --self-test \
    --fixtures tests/lint_fixtures || exit 1

echo "run_lint.sh: linting src/ ..." >&2
if [[ -n "$build_dir" ]]; then
  "$python_bin" tools/dbdc_lint.py --root . --build-dir "$build_dir"
else
  "$python_bin" tools/dbdc_lint.py --root .
fi
status=$?

if [[ $status -eq 0 ]]; then
  echo "run_lint.sh: clean." >&2
else
  echo "run_lint.sh: dbdc_lint reported findings (exit $status)." >&2
fi
exit "$status"
