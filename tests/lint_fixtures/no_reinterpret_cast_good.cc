// Clean variant: std::memcpy for type punning, std::bit_cast where the
// sizes match — and an audited byte-access cast suppressed with the
// inline allow mechanism (which this fixture also regression-tests).
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace dbdc {

double GoodPun(std::uint64_t bits) {
  double out = 0.0;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

void GoodAuditedByteWrite(std::ofstream& out,
                          const std::vector<unsigned char>& pixels) {
  // Byte-type access for I/O is well-defined; audited and suppressed.
  // dbdc-lint: allow(no-reinterpret-cast)
  out.write(reinterpret_cast<const char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size()));
}

}  // namespace dbdc
