// Integration tests of the TCP loopback transport (DESIGN.md §12): the
// bytes cross the kernel's real TCP stack, so this suite is where short
// reads, mid-frame disconnects, and wall-clock stragglers meet the
// engine's virtual-clock protocol machinery. Mirrors the fault_tolerance
// matrix on real sockets; runs under ASan and TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/dbdc.h"
#include "core/model_codec.h"
#include "data/generators.h"
#include "distrib/network.h"
#include "distrib/protocol.h"
#include "distrib/socket_transport.h"

namespace dbdc {
namespace {

std::unique_ptr<SocketTransport> MakeLoopback(int num_sites,
                                              std::size_t max_frame_bytes =
                                                  1u << 30) {
  SocketTransport::Options options;
  options.num_sites = num_sites;
  options.max_frame_bytes = max_frame_bytes;
  std::string error;
  std::unique_ptr<SocketTransport> transport =
      SocketTransport::CreateLoopback(options, &error);
  EXPECT_NE(transport, nullptr) << error;
  return transport;
}

// ---------------------------------------------------------------------------
// Transport contract over real sockets.

TEST(SocketTransportTest, RoutesMessagesThroughRealSockets) {
  auto net = MakeLoopback(3);
  ASSERT_NE(net, nullptr);

  const std::vector<std::uint8_t> up{1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> down{9, 8, 7};
  const std::size_t i0 = net->Send(0, kServerEndpoint, up);
  const std::size_t i1 = net->Send(kServerEndpoint, 2, down);
  ASSERT_NE(i0, kMessageDropped);
  ASSERT_NE(i1, kMessageDropped);

  ASSERT_EQ(net->NumMessages(), 2u);
  EXPECT_EQ(net->Message(i0).from, 0);
  EXPECT_EQ(net->Message(i0).to, kServerEndpoint);
  EXPECT_EQ(net->Message(i0).payload, up);
  EXPECT_EQ(net->Message(i1).payload, down);

  // The recorded bytes are app bytes only; framing overhead is tracked
  // separately and is strictly larger.
  EXPECT_EQ(net->BytesUplink(), up.size());
  EXPECT_EQ(net->BytesDownlink(), down.size());
  EXPECT_EQ(net->BytesTotal(), up.size() + down.size());
  EXPECT_GT(net->wire_bytes(), net->BytesTotal());
  EXPECT_EQ(net->stats().frames_routed, 2u);

  const std::vector<const NetworkMessage*> inbox =
      net->Inbox(kServerEndpoint);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0]->payload, up);

  // Measured wall transfer time is nonnegative and sane for loopback.
  EXPECT_GE(net->DeliveryDelaySeconds(i0), 0.0);
  EXPECT_LT(net->DeliveryDelaySeconds(i0), 5.0);
}

TEST(SocketTransportTest, InboxPointersStableAcrossManySends) {
  auto net = MakeLoopback(3);
  ASSERT_NE(net, nullptr);
  net->Send(0, kServerEndpoint, {1, 2, 3});
  const std::vector<const NetworkMessage*> snapshot =
      net->Inbox(kServerEndpoint);
  ASSERT_EQ(snapshot.size(), 1u);
  for (int i = 0; i < 300; ++i) {
    net->Send(i % 3, kServerEndpoint,
              std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(snapshot[0]->payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(SocketTransportTest, InjectedDelayIsReportedNotSlept) {
  auto net = MakeLoopback(2);
  ASSERT_NE(net, nullptr);
  net->SetExtraDelaySeconds(1, 2.5);
  const std::size_t index = net->Send(1, kServerEndpoint, {42});
  ASSERT_NE(index, kMessageDropped);
  // 2.5 virtual seconds reported; the Send itself returned in wall
  // microseconds (it would have hit io_timeout_sec long before 2.5 s).
  EXPECT_GE(net->DeliveryDelaySeconds(index), 2.5);
  EXPECT_LT(net->DeliveryDelaySeconds(index), 3.0);
}

// ---------------------------------------------------------------------------
// Failure shapes.

TEST(SocketTransportTest, ClosedEndpointDropsSendsBothDirections) {
  auto net = MakeLoopback(3);
  ASSERT_NE(net, nullptr);
  net->CloseEndpoint(1);
  EXPECT_EQ(net->Send(1, kServerEndpoint, {1, 2}), kMessageDropped);
  EXPECT_EQ(net->Send(kServerEndpoint, 1, {3, 4}), kMessageDropped);
  EXPECT_NE(net->Send(0, kServerEndpoint, {5, 6}), kMessageDropped);
  EXPECT_EQ(net->stats().sends_dropped, 2u);
  net->CloseEndpoint(1);  // Idempotent.
  EXPECT_EQ(net->NumMessages(), 1u);
}

TEST(SocketTransportTest, MidFrameDisconnectIsCountedAndNeverDelivered) {
  auto net = MakeLoopback(3);
  ASSERT_NE(net, nullptr);
  ASSERT_NE(net->Send(2, kServerEndpoint, {1, 2, 3}), kMessageDropped);
  net->CloseEndpoint(2, /*mid_frame=*/true);
  // The truncated frame was discarded, not delivered.
  EXPECT_EQ(net->NumMessages(), 1u);
  EXPECT_EQ(net->stats().mid_frame_disconnects, 1u);
  EXPECT_EQ(net->Send(2, kServerEndpoint, {9}), kMessageDropped);
}

TEST(SocketTransportTest, OversizedFramePoisonsTheSendersStream) {
  // The hub's assembler caps declared payloads at max_frame_bytes; a
  // bigger send breaks the sender's framing and closes its endpoint.
  auto net = MakeLoopback(2, /*max_frame_bytes=*/128);
  ASSERT_NE(net, nullptr);
  ASSERT_NE(net->Send(0, kServerEndpoint,
                      std::vector<std::uint8_t>(16, 1)),
            kMessageDropped);
  EXPECT_EQ(net->Send(0, kServerEndpoint,
                      std::vector<std::uint8_t>(1024, 2)),
            kMessageDropped);
  EXPECT_GE(net->stats().framing_errors, 1u);
  // The poisoned endpoint is dead; the other still works.
  EXPECT_EQ(net->Send(0, kServerEndpoint, {3}), kMessageDropped);
  EXPECT_NE(net->Send(1, kServerEndpoint, {4}), kMessageDropped);
}

// ---------------------------------------------------------------------------
// Full pipeline over TCP.

DbdcConfig BaseConfig(const SyntheticDataset& synth, int sites) {
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = sites;
  return config;
}

TEST(SocketDbdcTest, FaultFreeRunIsBitIdenticalToSimulatedNetwork) {
  const SyntheticDataset synth = MakeTestDatasetA(31);
  const DbdcConfig config = BaseConfig(synth, 4);

  SimulatedNetwork plain;
  const DbdcResult reference =
      RunDbdc(synth.data, Euclidean(), config, &plain);

  auto socket_net = MakeLoopback(config.num_sites);
  ASSERT_NE(socket_net, nullptr);
  const DbdcResult result =
      RunDbdc(synth.data, Euclidean(), config, socket_net.get());

  EXPECT_EQ(result.labels, reference.labels);
  EXPECT_EQ(result.bytes_uplink, reference.bytes_uplink);
  EXPECT_EQ(result.bytes_downlink, reference.bytes_downlink);
  EXPECT_EQ(EncodeGlobalModel(result.global_model),
            EncodeGlobalModel(reference.global_model));
  EXPECT_EQ(result.sites_failed, 0);
  EXPECT_EQ(result.sites_reporting, config.num_sites);

  // Message-by-message byte identity with the simulated transport.
  ASSERT_EQ(socket_net->NumMessages(), plain.NumMessages());
  for (std::size_t i = 0; i < plain.NumMessages(); ++i) {
    EXPECT_EQ(socket_net->Message(i).from, plain.Message(i).from);
    EXPECT_EQ(socket_net->Message(i).to, plain.Message(i).to);
    EXPECT_EQ(socket_net->Message(i).payload, plain.Message(i).payload);
  }
}

TEST(SocketDbdcTest, ProtocolRunOverTcpMatchesSimulatedNetwork) {
  const SyntheticDataset synth = MakeTestDatasetA(31);
  DbdcConfig config = BaseConfig(synth, 4);
  config.protocol.enabled = true;

  SimulatedNetwork plain;
  const DbdcResult reference =
      RunDbdc(synth.data, Euclidean(), config, &plain);

  auto socket_net = MakeLoopback(config.num_sites);
  ASSERT_NE(socket_net, nullptr);
  const DbdcResult result =
      RunDbdc(synth.data, Euclidean(), config, socket_net.get());

  EXPECT_EQ(result.labels, reference.labels);
  EXPECT_EQ(result.bytes_uplink, reference.bytes_uplink);
  EXPECT_EQ(result.bytes_downlink, reference.bytes_downlink);
  EXPECT_EQ(result.protocol_retries, 0u);
  EXPECT_EQ(result.sites_relabeled, config.num_sites);
}

TEST(SocketDbdcTest, PeerDisconnectMidFrameDegradesGracefully) {
  const SyntheticDataset synth = MakeTestDatasetA(32);
  DbdcConfig config = BaseConfig(synth, 5);
  config.protocol.enabled = true;

  auto socket_net = MakeLoopback(config.num_sites);
  ASSERT_NE(socket_net, nullptr);
  // Site 2's process dies halfway through writing a frame, before the
  // run starts. The engine must report it failed and cluster the rest.
  socket_net->CloseEndpoint(2, /*mid_frame=*/true);

  const DbdcResult result =
      RunDbdc(synth.data, Euclidean(), config, socket_net.get());

  EXPECT_EQ(result.sites_failed, 1);
  EXPECT_EQ(result.failed_site_ids, (std::vector<int>{2}));
  EXPECT_EQ(result.sites_reporting, config.num_sites - 1);
  EXPECT_GT(result.num_global_clusters, 0);
  EXPECT_EQ(socket_net->stats().mid_frame_disconnects, 1u);
  // The dead site's points keep kNoise.
  std::size_t noise = 0;
  for (const ClusterId label : result.labels) noise += label == kNoise;
  EXPECT_GE(noise, result.site_sizes[2]);
  EXPECT_LT(noise, result.labels.size());
}

TEST(SocketDbdcTest, StragglerPastTheCollectionDeadlineIsExcluded) {
  const SyntheticDataset synth = MakeTestDatasetA(33);
  DbdcConfig config = BaseConfig(synth, 4);
  config.protocol.enabled = true;
  config.protocol.collection_deadline_sec = 5.0;

  auto socket_net = MakeLoopback(config.num_sites);
  ASSERT_NE(socket_net, nullptr);
  // Site 3 sits behind a WAN link 10 virtual seconds slow: its model
  // arrives intact but past the deadline, so the server must exclude it.
  socket_net->SetExtraDelaySeconds(3, 10.0);

  const DbdcResult result =
      RunDbdc(synth.data, Euclidean(), config, socket_net.get());

  EXPECT_EQ(result.sites_failed, 1);
  EXPECT_EQ(result.failed_site_ids, (std::vector<int>{3}));
  EXPECT_EQ(result.sites_reporting, config.num_sites - 1);
  EXPECT_GT(result.num_global_clusters, 0);

  // Without a deadline the same straggler is waited for and included.
  DbdcConfig patient = config;
  patient.protocol.collection_deadline_sec =
      std::numeric_limits<double>::infinity();
  auto patient_net = MakeLoopback(config.num_sites);
  ASSERT_NE(patient_net, nullptr);
  patient_net->SetExtraDelaySeconds(3, 10.0);
  const DbdcResult patient_result =
      RunDbdc(synth.data, Euclidean(), patient, patient_net.get());
  EXPECT_EQ(patient_result.sites_failed, 0);
  EXPECT_EQ(patient_result.sites_reporting, config.num_sites);
}

}  // namespace
}  // namespace dbdc
