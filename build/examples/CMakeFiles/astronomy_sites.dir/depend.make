# Empty dependencies file for astronomy_sites.
# This may be replaced when dependencies are built.
