#ifndef DBDC_CORE_AGGREGATOR_H_
#define DBDC_CORE_AGGREGATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/global_model.h"
#include "core/model_codec.h"
#include "distrib/transport.h"

namespace dbdc {

/// An intermediate merge node of the aggregation tree (DESIGN.md §13):
/// collects the local (or intermediate) models of its children and
/// merges them into ONE intermediate model that travels up the tree in
/// their place, so the root's fan-in is bounded by the tree fanout
/// instead of the site count.
///
/// Two merge modes, selected by `condense_eps`:
///
///   condense_eps == 0 (lossless): the child models are concatenated in
///   child order with their local-cluster ids offset apart. The merged
///   model carries exactly the children's representatives in order, so a
///   lossless tree presents the root with the same representative
///   sequence as the flat star — global labels are bit-identical in
///   fault-free runs (the topology_test pins this).
///
///   condense_eps > 0 (condensing): the node first runs the global-merge
///   machinery (GlobalModelStrategy; default the paper's DBSCAN merge)
///   over its children to discover which representatives describe the
///   same density area, stamps those intermediate cluster ids into the
///   concatenated model, and then condenses it with CondenseLocalModel —
///   cross-child representatives of one intermediate cluster within
///   condense_eps collapse into their heaviest survivor with enlarged
///   ε-range and summed weight. CondenseLocalModel's coverage guarantee
///   carries over: every object covered below stays covered above, so
///   condensation trades range coarseness, never reachability.
///
/// Continuous mode upserts/removes child contributions by child id
/// (elastic membership); batch mode appends in arrival order.
class AggregatorNode {
 public:
  /// `node_id` becomes the site_id of the merged model (so an upsert at
  /// the parent keys on the aggregator, like any other child).
  /// `metric` and `strategy` are borrowed and must outlive the node;
  /// null strategy = the paper's DBSCAN merge (only consulted when
  /// condense_eps > 0).
  AggregatorNode(EndpointId node_id, const Metric& metric,
                 const GlobalModelParams& params, double condense_eps,
                 const GlobalModelStrategy* strategy = nullptr);

  /// Batch ingestion: appends a child model received as bytes; on
  /// anything but kOk the payload is ignored.
  DecodeStatus AddChildModelBytes(std::span<const std::uint8_t> bytes);
  void AddChildModel(LocalModel model);

  /// Continuous ingestion: replaces the stored model with the same
  /// site_id (appends on first contact) — a refresh supersedes the
  /// child's previous contribution.
  void UpsertChildModel(LocalModel model);
  DecodeStatus UpsertChildModelBytes(std::span<const std::uint8_t> bytes);

  /// Drops the stored model of `child_id` (a retired/expired child or a
  /// dead child aggregator). Returns whether anything was stored.
  bool RemoveChildModel(int child_id);

  /// Merges the stored child models into the intermediate model this
  /// node forwards to its parent. Valid with zero children (an empty
  /// model). Records merge_seconds().
  const LocalModel& BuildIntermediateModel();
  /// BuildIntermediateModel() serialized with the v3 codec.
  std::vector<std::uint8_t> EncodeIntermediateModelBytes();

  EndpointId node_id() const { return node_id_; }
  std::size_t num_child_models() const { return children_.size(); }
  const std::vector<LocalModel>& child_models() const { return children_; }
  /// Wall-clock seconds of the last BuildIntermediateModel().
  double merge_seconds() const { return merge_seconds_; }
  /// Representatives in across all stored children vs out of the last
  /// merge — the condensation ratio the bench reports.
  std::size_t representatives_in() const;
  std::size_t representatives_out() const {
    return merged_.representatives.size();
  }

 private:
  EndpointId node_id_;
  const Metric* metric_;
  GlobalModelParams params_;
  double condense_eps_;
  const GlobalModelStrategy* strategy_;
  std::vector<LocalModel> children_;
  LocalModel merged_;
  double merge_seconds_ = 0.0;
};

}  // namespace dbdc

#endif  // DBDC_CORE_AGGREGATOR_H_
