// Property suite verifying the clustering outputs directly against the
// paper's definitions (Sec. 4.1), independently of any reference
// implementation: core condition (Def. 1), cluster maximality and
// connectivity (Def. 4), noise (Def. 5) — plus the relabeling contract
// of Sec. 7 on full DBDC runs.

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/optics.h"
#include "core/dbdc.h"
#include "data/generators.h"
#include "index/linear_scan_index.h"
#include "test_util.h"

namespace dbdc {
namespace {

/// Brute-force neighborhood of point p.
std::vector<PointId> Neighborhood(const Dataset& data, const Metric& metric,
                                  PointId p, double eps) {
  std::vector<PointId> out;
  for (PointId q = 0; q < static_cast<PointId>(data.size()); ++q) {
    if (metric.Distance(data.point(p), data.point(q)) <= eps) {
      out.push_back(q);
    }
  }
  return out;
}

using DbscanCase = std::tuple<std::uint64_t, int>;  // (seed, min_pts)

class DbscanDefinitionTest : public ::testing::TestWithParam<DbscanCase> {};

TEST_P(DbscanDefinitionTest, OutputSatisfiesTheDefinitions) {
  const auto [seed, min_pts] = GetParam();
  Rng rng(seed);
  // A mix of blobs and background noise.
  Dataset data(2);
  std::vector<ClusterId> unused;
  AppendBlob({{2.0, 2.0}, 0.5, 60}, 0, &rng, &data, &unused);
  AppendBlob({{8.0, 2.0}, 0.7, 80}, 1, &rng, &data, &unused);
  AppendUniformNoise(60, 0.0, 10.0, &rng, &data, &unused);
  const DbscanParams params{0.6, min_pts};
  const LinearScanIndex index(data, Euclidean());
  const Clustering result = RunDbscan(index, params);
  const std::size_t n = data.size();

  // Def. 1 (core condition): is_core[p] <=> |N_eps(p)| >= MinPts.
  std::vector<std::vector<PointId>> nbrs(n);
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    nbrs[p] = Neighborhood(data, Euclidean(), p, params.eps);
    EXPECT_EQ(result.is_core[p] != 0,
              static_cast<int>(nbrs[p].size()) >= params.min_pts)
        << "core flag wrong at " << p;
  }

  // Compute the ground-truth core components (density-connectivity).
  std::vector<int> comp(n, -1);
  int num_comps = 0;
  for (PointId seed_pt = 0; seed_pt < static_cast<PointId>(n); ++seed_pt) {
    if (!result.is_core[seed_pt] || comp[seed_pt] >= 0) continue;
    const int c = num_comps++;
    std::vector<PointId> queue{seed_pt};
    comp[seed_pt] = c;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      for (const PointId q : nbrs[queue[i]]) {
        if (result.is_core[q] && comp[q] < 0) {
          comp[q] = c;
          queue.push_back(q);
        }
      }
    }
  }

  // Def. 4 connectivity + maximality for core points: two cores share a
  // DBSCAN label iff they are density-connected (same component).
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    if (!result.is_core[p]) continue;
    for (PointId q = p + 1; q < static_cast<PointId>(n); ++q) {
      if (!result.is_core[q]) continue;
      EXPECT_EQ(result.labels[p] == result.labels[q], comp[p] == comp[q])
          << "cores " << p << "," << q;
    }
  }
  EXPECT_EQ(result.num_clusters, num_comps);

  // Def. 5 noise: exactly the points that are neither core nor within
  // eps of a core.
  for (PointId p = 0; p < static_cast<PointId>(n); ++p) {
    if (result.is_core[p]) continue;
    bool reachable = false;
    for (const PointId q : nbrs[p]) {
      if (result.is_core[q]) reachable = true;
    }
    EXPECT_EQ(result.labels[p] == kNoise, !reachable) << "point " << p;
    if (result.labels[p] >= 0) {
      // Border points carry the label of an adjacent core.
      bool consistent = false;
      for (const PointId q : nbrs[p]) {
        if (result.is_core[q] && result.labels[q] == result.labels[p]) {
          consistent = true;
        }
      }
      EXPECT_TRUE(consistent) << "border " << p;
    }
  }

  // Def. 8 sanity: every cluster has at least MinPts members.
  for (const std::size_t size : result.ClusterSizes()) {
    EXPECT_GE(size, static_cast<std::size_t>(params.min_pts));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMinPts, DbscanDefinitionTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(3, 5, 9)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_minpts" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// The relabeling contract (Sec. 7) on full DBDC runs: a point's global
// label comes from a covering representative; uncovered points are
// noise.

class DbdcRelabelContractTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbdcRelabelContractTest, LabelsAreJustifiedByCoveringReps) {
  const SyntheticDataset synth =
      MakeBlobs(1200, 5, 0.15, 1.0, 2.0, GetParam());
  DbdcConfig config;
  config.local_dbscan = {1.2, 5};
  config.num_sites = 5;
  config.seed = GetParam();
  const DbdcResult result = RunDbdc(synth.data, Euclidean(), config);
  const GlobalModel& global = result.global_model;

  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    // Covering representatives and their global clusters.
    bool covered = false;
    bool label_justified = false;
    double nearest_cover = 1e18;
    ClusterId nearest_cluster = kNoise;
    for (std::size_t r = 0; r < global.NumRepresentatives(); ++r) {
      const double d = Euclidean().Distance(
          synth.data.point(p),
          global.rep_points.point(static_cast<PointId>(r)));
      if (d > global.rep_eps[r]) continue;
      covered = true;
      if (global.rep_global_cluster[r] == result.labels[p]) {
        label_justified = true;
      }
      if (d < nearest_cover) {
        nearest_cover = d;
        nearest_cluster = global.rep_global_cluster[r];
      }
    }
    if (result.labels[p] == kNoise) {
      EXPECT_FALSE(covered) << "covered point " << p << " left as noise";
    } else {
      EXPECT_TRUE(label_justified)
          << "label of " << p << " not justified by any covering rep";
      // Our deterministic tie-break: the nearest covering rep wins.
      EXPECT_EQ(result.labels[p], nearest_cluster);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbdcRelabelContractTest,
                         ::testing::Values(1u, 2u, 3u));

// ---------------------------------------------------------------------------
// OPTICS extraction equivalence across every index type.

class OpticsIndexAgnosticTest : public ::testing::TestWithParam<IndexType> {
};

TEST_P(OpticsIndexAgnosticTest, ReachabilitiesIndependentOfIndex) {
  const SyntheticDataset synth = MakeTestDatasetC(33);
  const OpticsParams params{6.0, 5};
  const LinearScanIndex reference(synth.data, Euclidean());
  const OpticsResult want = RunOptics(reference, params);
  const auto index =
      CreateIndex(GetParam(), synth.data, Euclidean(), params.eps);
  const OpticsResult got = RunOptics(*index, params);
  ASSERT_EQ(got.ordering.size(), want.ordering.size());
  // Core distances are order-independent and must agree exactly.
  for (PointId p = 0; p < static_cast<PointId>(synth.data.size()); ++p) {
    EXPECT_DOUBLE_EQ(got.core_distance[p], want.core_distance[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, OpticsIndexAgnosticTest,
                         ::testing::Values(IndexType::kGrid,
                                           IndexType::kKdTree,
                                           IndexType::kRStarTree,
                                           IndexType::kRStarTreeBulk,
                                           IndexType::kMTree,
                                           IndexType::kVpTree),
                         [](const auto& info) {
                           return std::string(IndexTypeName(info.param));
                         });

}  // namespace
}  // namespace dbdc
