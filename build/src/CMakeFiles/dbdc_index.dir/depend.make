# Empty dependencies file for dbdc_index.
# This may be replaced when dependencies are built.
