// ApproxIndex contract suite — the analogue of engine_equivalence_test
// for the approximate tier (DESIGN.md §14). The load-bearing claims:
//
//  1. With the default window_scale = 1.0 the index is EXACT: the
//     Cauchy–Schwarz window covers every true ε-neighbor, candidates are
//     re-verified exactly, and the sorted output is bit-identical to
//     LinearScanIndex — per query, per batch, and through entire DBSCAN
//     runs — for every metric, thread count, and SIMD tier.
//  2. With the candidate generator configured exhaustive (cell width so
//     large every point hashes to one cell) the candidate set is the
//     whole dataset, so the equivalence cannot depend on projection
//     luck — this isolates the re-verification path.
//  3. Candidate accounting reconciles: generated == verified + pruned.

#include "index/approx_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "common/rng.h"
#include "core/dbdc.h"
#include "common/simd_kernels.h"
#include "data/generators.h"
#include "index/index_factory.h"
#include "index/linear_scan_index.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "test_util.h"

namespace dbdc {
namespace {

// Every tier this host can actually execute, scalar first.
std::vector<simd::Tier> SupportedTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  const int detected = static_cast<int>(simd::DetectedTier());
  if (detected >= static_cast<int>(simd::Tier::kSse2)) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (detected >= static_cast<int>(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

// Restores CPUID auto-dispatch however a test exits.
struct TierGuard {
  TierGuard() = default;
  ~TierGuard() { simd::ResetForcedTier(); }
};

// Cell width so large every point lands in projected cell 0 on every
// axis: the candidate set is the entire dataset in id order, making the
// index exhaustive regardless of where the projections point.
ApproxIndexOptions ExhaustiveOptions() {
  ApproxIndexOptions options;
  options.cell_width_factor = 1e18;
  return options;
}

// A mixed workload: three 3-d blobs plus uniform background, queried at
// several radii including ones far from the eps_hint the cells were
// sized for.
Dataset MixedDataset(std::uint64_t seed) {
  Rng rng(seed);
  Dataset data(3);
  std::vector<ClusterId> unused;
  AppendBlob({{0.0, 0.0, 0.0}, 0.5, 150}, 0, &rng, &data, &unused);
  AppendBlob({{10.0, 0.0, 5.0}, 0.5, 150}, 1, &rng, &data, &unused);
  AppendBlob({{5.0, 9.0, 2.0}, 0.8, 150}, 2, &rng, &data, &unused);
  AppendUniformNoise(50, -2.0, 12.0, &rng, &data, &unused);
  return data;
}

class ApproxExactnessTest : public ::testing::TestWithParam<const Metric*> {
 protected:
  const Metric& metric() const { return *GetParam(); }
};

// Claim 1 at the single-query level: default options, every supported
// SIMD tier, query radii above and below the hint, query points on and
// off the data — raw output vectors (content AND order) must equal the
// linear scan's.
TEST_P(ApproxExactnessTest, RangeQueryBitIdenticalToLinearScan) {
  const Dataset data = MixedDataset(91);
  const LinearScanIndex truth(data, metric());
  const ApproxIndex index(data, metric(), /*eps_hint=*/1.0);
  TierGuard guard;
  std::vector<PointId> got, want;
  for (const simd::Tier tier : SupportedTiers()) {
    ASSERT_TRUE(simd::ForceTier(tier));
    Rng rng(7);
    for (int trial = 0; trial < 40; ++trial) {
      const Point q{rng.Uniform(-2.0, 12.0), rng.Uniform(-2.0, 12.0),
                    rng.Uniform(-1.0, 6.0)};
      for (const double eps : {0.3, 1.0, 4.0}) {
        truth.RangeQuery(q, eps, &want);
        index.RangeQuery(q, eps, &got);
        EXPECT_EQ(got, want) << simd::TierName(tier) << " eps=" << eps;
      }
    }
    // Indexed-point queries (the DBSCAN access pattern).
    for (PointId q = 0; q < static_cast<PointId>(data.size()); q += 13) {
      truth.RangeQuery(q, 1.2, &want);
      index.RangeQuery(q, 1.2, &got);
      EXPECT_EQ(got, want) << simd::TierName(tier) << " id=" << q;
    }
  }
}

// Claim 2: the exhaustive configuration isolates re-verification — the
// candidate set is all of the data, so any mismatch would be a
// verification bug, not a recall gap.
TEST_P(ApproxExactnessTest, ExhaustiveConfigurationMatchesLinearScan) {
  const Dataset data = MixedDataset(92);
  const LinearScanIndex truth(data, metric());
  const ApproxIndex index(data, metric(), 1.0, ExhaustiveOptions());
  std::vector<PointId> got, want;
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const Point q{rng.Uniform(-2.0, 12.0), rng.Uniform(-2.0, 12.0),
                  rng.Uniform(-1.0, 6.0)};
    truth.RangeQuery(q, 1.5, &want);
    index.RangeQuery(q, 1.5, &got);
    EXPECT_EQ(got, want);
  }
}

// Batched expansion must agree with the per-query path bit-identically,
// empty-result queries included (their zero counts keep the CSR offsets
// aligned).
TEST_P(ApproxExactnessTest, BatchRangeQueryMatchesPerQueryPath) {
  Rng rng(9);
  Dataset data = MixedDataset(93);
  // An isolated far-away point: its neighborhood at small eps is just
  // itself; a query elsewhere at tiny eps yields nothing.
  data.Add(Point{100.0, 100.0, 100.0});
  const ApproxIndex index(data, metric(), 1.0);
  std::vector<PointId> queries;
  for (PointId q = 0; q < static_cast<PointId>(data.size()); q += 7) {
    queries.push_back(q);
  }
  std::vector<PointId> batch_ids, single;
  std::vector<std::size_t> batch_counts;
  for (const double eps : {0.05, 0.9, 3.0}) {
    index.BatchRangeQuery(queries, eps, &batch_ids, &batch_counts);
    ASSERT_EQ(batch_counts.size(), queries.size());
    std::size_t offset = 0;
    for (std::size_t j = 0; j < queries.size(); ++j) {
      index.RangeQuery(queries[j], eps, &single);
      ASSERT_EQ(batch_counts[j], single.size()) << "query " << j;
      for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(batch_ids[offset + i], single[i]);
      }
      offset += batch_counts[j];
    }
    EXPECT_EQ(offset, batch_ids.size());
  }
}

// k-NN is tie-pinned to (distance, id) ascending like every backend, so
// raw id sequences — not just distances — must match the linear scan.
TEST_P(ApproxExactnessTest, KnnQueryBitIdenticalToLinearScan) {
  const Dataset data = MixedDataset(94);
  const LinearScanIndex truth(data, metric());
  const ApproxIndex index(data, metric(), 1.0);
  std::vector<PointId> got, want;
  Rng rng(10);
  for (int trial = 0; trial < 25; ++trial) {
    const Point q{rng.Uniform(-2.0, 12.0), rng.Uniform(-2.0, 12.0),
                  rng.Uniform(-1.0, 6.0)};
    for (const int k : {1, 4, 23, 600}) {
      truth.KnnQuery(q, k, &want);
      index.KnnQuery(q, k, &got);
      EXPECT_EQ(got, want) << "k=" << k;
    }
  }
}

// Claim 1 end-to-end: whole DBSCAN runs (sequential and parallel, every
// SIMD tier) produce bit-identical labels/core flags on the approximate
// index. Uses the suggested parameters of a moderate-dimension blob
// dataset — the workload the index exists for, scaled down.
TEST_P(ApproxExactnessTest, DbscanLabelsBitIdenticalAcrossThreadsAndTiers) {
  const SyntheticDataset synth = MakeHighDimBlobs(900, 6, 4, 0.05, 95);
  const DbscanParams params = synth.suggested_params;
  const LinearScanIndex truth_index(synth.data, metric());
  const Clustering want = RunDbscan(truth_index, params);
  const ApproxIndex index(synth.data, metric(), params.eps);
  TierGuard guard;
  for (const simd::Tier tier : SupportedTiers()) {
    ASSERT_TRUE(simd::ForceTier(tier));
    for (const int threads : {1, 4}) {
      DbscanParams p = params;
      p.threads = threads;
      const Clustering got = RunDbscan(index, p);
      EXPECT_EQ(got.labels, want.labels)
          << simd::TierName(tier) << " threads=" << threads;
      EXPECT_EQ(got.is_core, want.is_core)
          << simd::TierName(tier) << " threads=" << threads;
      EXPECT_EQ(got.num_clusters, want.num_clusters);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, ApproxExactnessTest,
                         ::testing::Values(&Euclidean(), &Manhattan(),
                                           &Chebyshev()),
                         [](const auto& info) {
                           return std::string(info.param->name());
                         });

// Claim 3: the obs accounting a --metrics run reconciles — every
// generated candidate is either verified into the result or pruned.
TEST(ApproxIndexTest, CandidateCountersReconcile) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObsScope scope(&registry, &tracer);
  const Dataset data = MixedDataset(96);
  const ApproxIndex index(data, Euclidean(), 1.0);
  std::vector<PointId> out;
  std::vector<PointId> queries;
  for (PointId q = 0; q < 60; ++q) queries.push_back(q);
  std::vector<PointId> batch_ids;
  std::vector<std::size_t> batch_counts;
  index.RangeQuery(queries[0], 1.0, &out);
  index.BatchRangeQuery(queries, 1.0, &batch_ids, &batch_counts);
  const std::uint64_t generated =
      registry.CounterValue(obs::Counter::kApproxCandidatesGenerated);
  const std::uint64_t verified =
      registry.CounterValue(obs::Counter::kApproxCandidatesVerified);
  const std::uint64_t pruned =
      registry.CounterValue(obs::Counter::kApproxCandidatesPruned);
  EXPECT_GT(generated, 0u);
  EXPECT_GT(verified, 0u);
  EXPECT_EQ(generated, verified + pruned);
  // The projections must actually prune on this workload: three separated
  // blobs mean most of the dataset never becomes a candidate.
  EXPECT_LT(generated, (queries.size() + 1) * data.size());
}

// Different seeds move the projection directions, never the answers
// (full recall + exact verification); the same seed reproduces the
// candidate accounting exactly.
TEST(ApproxIndexTest, SeedChangesCandidatesButNeverAnswers) {
  const Dataset data = MixedDataset(97);
  ApproxIndexOptions a, b;
  b.seed = 0xfeedULL;
  const ApproxIndex first(data, Euclidean(), 1.0, a);
  const ApproxIndex second(data, Euclidean(), 1.0, b);
  const ApproxIndex repeat(data, Euclidean(), 1.0, a);
  std::vector<PointId> out_first, out_second, out_repeat;
  for (PointId q = 0; q < static_cast<PointId>(data.size()); q += 11) {
    first.RangeQuery(q, 1.3, &out_first);
    second.RangeQuery(q, 1.3, &out_second);
    repeat.RangeQuery(q, 1.3, &out_repeat);
    EXPECT_EQ(out_first, out_second) << "id=" << q;
    EXPECT_EQ(out_first, out_repeat) << "id=" << q;
  }
}

// More projections tighten the candidate set (each axis is another
// necessary condition), never the answers.
TEST(ApproxIndexTest, MoreProjectionsOnlyPrune) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ObsScope scope(&registry, &tracer);
  const Dataset data = MixedDataset(98);
  std::vector<PointId> queries;
  for (PointId q = 0; q < 80; ++q) queries.push_back(q);
  std::vector<PointId> ids_few, ids_many;
  std::vector<std::size_t> counts_few, counts_many;
  std::uint64_t generated_few = 0;
  {
    ApproxIndexOptions options;
    options.num_projections = 1;
    const ApproxIndex index(data, Euclidean(), 1.0, options);
    index.BatchRangeQuery(queries, 1.0, &ids_few, &counts_few);
    generated_few =
        registry.CounterValue(obs::Counter::kApproxCandidatesGenerated);
  }
  {
    ApproxIndexOptions options;
    options.num_projections = 8;
    const ApproxIndex index(data, Euclidean(), 1.0, options);
    index.BatchRangeQuery(queries, 1.0, &ids_many, &counts_many);
  }
  const std::uint64_t generated_many =
      registry.CounterValue(obs::Counter::kApproxCandidatesGenerated) -
      generated_few;
  EXPECT_EQ(ids_few, ids_many);
  EXPECT_EQ(counts_few, counts_many);
  EXPECT_LE(generated_many, generated_few);
}

// Degenerate shapes: all-duplicate data (every point one cell), a
// single point, and queries far outside the indexed region (the
// occupied-cell fallback path).
TEST(ApproxIndexTest, DegenerateDatasets) {
  Dataset dupes(2);
  for (int i = 0; i < 64; ++i) dupes.Add(Point{3.0, 4.0});
  const ApproxIndex dupe_index(dupes, Euclidean(), 0.5);
  std::vector<PointId> out;
  dupe_index.RangeQuery(Point{3.0, 4.0}, 0.0, &out);
  EXPECT_EQ(out.size(), 64u);
  dupe_index.KnnQuery(Point{0.0, 0.0}, 10, &out);
  ASSERT_EQ(out.size(), 10u);
  for (PointId i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);  // Tie-pinned.

  Dataset single(2);
  single.Add(Point{1.0, 1.0});
  const ApproxIndex single_index(single, Euclidean(), 1.0);
  single_index.RangeQuery(Point{1.0, 1.0}, 0.0, &out);
  EXPECT_EQ(out, (std::vector<PointId>{0}));
  // Far query, eps tiny relative to the distance: window spans an
  // astronomical cell box, which must fall back to the occupied-cell
  // scan instead of iterating it.
  single_index.RangeQuery(Point{1e7, -1e7}, 0.01, &out);
  EXPECT_TRUE(out.empty());
  single_index.KnnQuery(Point{1e7, -1e7}, 3, &out);
  EXPECT_EQ(out, (std::vector<PointId>{0}));
}

// Dynamic updates mirror LinearScanIndex through interleaved
// insert/erase/query traffic (the incremental-DBSCAN substrate).
TEST(ApproxIndexTest, InsertEraseMatchesLinearTruth) {
  Rng rng(99);
  const Dataset data = RandomDataset(300, 3, 0.0, 10.0, &rng);
  LinearScanIndex truth(data, Euclidean(), /*index_all=*/false);
  ApproxIndex index(data, Euclidean(), 1.0, ApproxIndexOptions{},
                    /*index_all=*/false);
  ASSERT_TRUE(index.SupportsDynamicUpdates());
  std::vector<PointId> present, got, want;
  for (int step = 0; step < 600; ++step) {
    const bool do_insert =
        present.empty() ||
        (present.size() < data.size() && rng.UniformInt(0, 2) != 0);
    if (do_insert) {
      PointId id;
      do {
        id = static_cast<PointId>(rng.UniformInt(0, data.size() - 1));
      } while (std::find(present.begin(), present.end(), id) !=
               present.end());
      present.push_back(id);
      index.Insert(id);
      truth.Insert(id);
    } else {
      const std::size_t pos = rng.UniformInt(0, present.size() - 1);
      const PointId id = present[pos];
      present.erase(present.begin() + pos);
      index.Erase(id);
      truth.Erase(id);
    }
    ASSERT_EQ(index.size(), present.size());
    if (step % 20 == 0) {
      const Point q{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0),
                    rng.Uniform(0.0, 10.0)};
      truth.RangeQuery(q, 1.5, &want);
      index.RangeQuery(q, 1.5, &got);
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got, want) << "step " << step;
    }
  }
}

// Factory + engine plumbing: the options travel from DbdcConfig into
// the sites, and the full distributed pipeline on the approximate index
// agrees with the same run on the linear scan.
TEST(ApproxIndexTest, EngineRunMatchesLinearScanIndex) {
  const SyntheticDataset synth = MakeHighDimBlobs(1200, 5, 4, 0.05, 101);
  DbdcConfig config;
  config.local_dbscan = synth.suggested_params;
  config.num_sites = 3;
  config.index_type = IndexType::kApprox;
  config.approx.num_projections = 3;
  ASSERT_TRUE(config.Validate().ok);
  const DbdcResult approx_run = RunDbdc(synth.data, Euclidean(), config);
  config.index_type = IndexType::kLinearScan;
  const DbdcResult exact_run = RunDbdc(synth.data, Euclidean(), config);
  EXPECT_EQ(approx_run.labels, exact_run.labels);
  EXPECT_EQ(approx_run.num_global_clusters, exact_run.num_global_clusters);
}

}  // namespace
}  // namespace dbdc
