#ifndef DBDC_CLUSTER_OPTICS_H_
#define DBDC_CLUSTER_OPTICS_H_

#include <limits>
#include <vector>

#include "cluster/dbscan.h"
#include "index/neighbor_index.h"

namespace dbdc {

/// OPTICS parameters: the generating distance `eps` bounds the
/// neighborhoods considered; `min_pts` as in DBSCAN.
struct OpticsParams {
  double eps = 0.0;
  int min_pts = 0;
};

/// The cluster-ordering produced by OPTICS (Ankerst, Breunig, Kriegel,
/// Sander, SIGMOD 1999). The paper discusses OPTICS as an alternative way
/// to build the DBDC global model: one run supports extracting a flat
/// clustering for any eps' <= eps without re-clustering.
struct OpticsResult {
  /// Marks an undefined reachability/core distance.
  static constexpr double kUndefined = std::numeric_limits<double>::infinity();

  /// Visit order of all points.
  std::vector<PointId> ordering;
  /// Per point (indexed by PointId): reachability distance.
  std::vector<double> reachability;
  /// Per point (indexed by PointId): core distance.
  std::vector<double> core_distance;
};

/// Computes the OPTICS cluster-ordering of all indexed points.
OpticsResult RunOptics(const NeighborIndex& index, const OpticsParams& params);

/// Extracts the DBSCAN-equivalent flat clustering for `eps_prime` from an
/// OPTICS ordering (requires eps_prime <= the generating eps and the same
/// min_pts). Core flags are set for points with core distance <=
/// eps_prime.
Clustering ExtractDbscanClustering(const OpticsResult& optics,
                                   double eps_prime);

}  // namespace dbdc

#endif  // DBDC_CLUSTER_OPTICS_H_
