#include "common/bounding_box.h"

#include <algorithm>
#include <limits>

namespace dbdc {

BoundingBox::BoundingBox(int dim)
    : lo_(dim, std::numeric_limits<double>::max()),
      hi_(dim, std::numeric_limits<double>::lowest()) {
  DBDC_CHECK(dim >= 1);
}

BoundingBox BoundingBox::FromPoint(std::span<const double> p) {
  BoundingBox box(static_cast<int>(p.size()));
  box.Extend(p);
  return box;
}

void BoundingBox::Extend(std::span<const double> p) {
  DBDC_CHECK(static_cast<int>(p.size()) == dim());
  for (int i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
  empty_ = false;
}

void BoundingBox::Extend(const BoundingBox& other) {
  DBDC_CHECK(other.dim() == dim());
  if (other.empty_) return;
  for (int i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
  empty_ = false;
}

bool BoundingBox::Contains(std::span<const double> p) const {
  if (empty_) return false;
  for (int i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  if (empty_ || other.empty_) return false;
  for (int i = 0; i < dim(); ++i) {
    if (lo_[i] > other.hi_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

double BoundingBox::Margin() const {
  if (empty_) return 0.0;
  double sum = 0.0;
  for (int i = 0; i < dim(); ++i) sum += hi_[i] - lo_[i];
  return sum;
}

double BoundingBox::Volume() const {
  if (empty_) return 0.0;
  double vol = 1.0;
  for (int i = 0; i < dim(); ++i) vol *= hi_[i] - lo_[i];
  return vol;
}

double BoundingBox::OverlapVolume(const BoundingBox& other) const {
  if (empty_ || other.empty_) return 0.0;
  double vol = 1.0;
  for (int i = 0; i < dim(); ++i) {
    const double side =
        std::min(hi_[i], other.hi_[i]) - std::max(lo_[i], other.lo_[i]);
    if (side <= 0.0) return 0.0;
    vol *= side;
  }
  return vol;
}

double BoundingBox::Enlargement(const BoundingBox& other) const {
  BoundingBox merged = *this;
  merged.Extend(other);
  return merged.Volume() - Volume();
}

std::vector<double> BoundingBox::Center() const {
  DBDC_CHECK(!empty_);
  std::vector<double> c(dim());
  for (int i = 0; i < dim(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

}  // namespace dbdc
