#include "serve/server.h"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/model_codec.h"
#include "core/stage_stats.h"
#include "distrib/protocol.h"

namespace dbdc::serve {
namespace {

/// Poll granularity of the IO loop: short enough that per-stage status
/// updates stream promptly, long enough not to busy-spin an idle server.
constexpr int kPollMillis = 50;

/// Largest single read per drain step.
constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

/// One client connection. IO-thread-only.
struct DbdcServer::Session {
  explicit Session(Fd socket, std::size_t max_frame_bytes)
      : fd(std::move(socket)), assembler(max_frame_bytes) {}

  Fd fd;
  FrameAssembler assembler;
  std::uint32_t next_seq = 0;
  /// Engaged once the session's JobRequest was admitted.
  bool has_job = false;
  std::uint64_t job_id = 0;
  /// Stage count last reported to the client.
  int stages_sent = 0;
};

DbdcServer::DbdcServer(ServerOptions options)
    : options_(std::move(options)), manager_(options_.limits) {}

DbdcServer::~DbdcServer() { Stop(); }

bool DbdcServer::Start(std::string* error) {
  DBDC_CHECK(!started_ && "Start() called twice");
  listen_fd_ = ListenTcp(options_.port, /*backlog=*/16, &port_, error);
  if (!listen_fd_.valid()) return false;
  if (!SetNonBlocking(listen_fd_.get())) {
    if (error != nullptr) *error = "cannot make the listener nonblocking";
    return false;
  }
  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  return true;
}

void DbdcServer::Wait() {
  if (io_thread_.joinable()) io_thread_.join();
}

void DbdcServer::Stop() {
  {
    MutexLock lock(&mu_);
    stop_requested_ = true;
  }
  Wait();
  manager_.Shutdown();
}

std::uint64_t DbdcServer::jobs_served() const {
  MutexLock lock(&mu_);
  return jobs_served_;
}

void DbdcServer::Log(const std::string& line) {
  if (options_.log) options_.log(line);
}

bool DbdcServer::SendMsg(Session* session,
                         const std::vector<std::uint8_t>& payload) {
  Frame frame;
  frame.type = FrameType::kData;
  frame.seq = session->next_seq++;
  frame.payload = payload;
  return WriteAllFd(session->fd.get(), EncodeFrame(frame),
                    options_.io_timeout_sec);
}

bool DbdcServer::HandleSessionFrames(Session* session) {
  while (std::optional<Frame> frame = session->assembler.Next()) {
    const std::optional<MsgType> type = PeekMsgType(frame->payload);
    if (!type.has_value()) {
      Log("session: unknown message type; dropping connection");
      return false;
    }
    switch (*type) {
      case MsgType::kJobRequest: {
        if (session->has_job) {
          Log("session: second JobRequest on one connection; dropping");
          return false;
        }
        JobRequest request;
        const DecodeStatus status = DecodeJobRequest(frame->payload, &request);
        if (status != DecodeStatus::kOk) {
          JobRejected rejected;
          rejected.field = "request";
          rejected.message = std::string("undecodable JobRequest: ") +
                             DecodeStatusName(status);
          Log("session: " + rejected.message);
          (void)SendMsg(session, EncodeJobRejected(rejected));
          return false;
        }
        const AdmitDecision decision = manager_.Submit(std::move(request));
        if (!decision.accepted) {
          JobRejected rejected;
          rejected.field = decision.field;
          rejected.message = decision.message;
          Log("job rejected: " + rejected.field + ": " + rejected.message);
          (void)SendMsg(session, EncodeJobRejected(rejected));
          return false;
        }
        session->has_job = true;
        session->job_id = decision.job_id;
        JobAccepted accepted;
        accepted.job_id = decision.job_id;
        accepted.queue_depth = decision.queue_depth;
        Log("job " + std::to_string(decision.job_id) + " admitted (queue " +
            std::to_string(decision.queue_depth) + ")");
        if (!SendMsg(session, EncodeJobAccepted(accepted))) return false;
        break;
      }
      case MsgType::kShutdown: {
        if (!options_.allow_remote_shutdown) {
          Log("session: remote shutdown refused (not allowed)");
          return false;
        }
        Log("remote shutdown accepted; draining");
        (void)SendMsg(session, EncodeShutdownAck());
        MutexLock lock(&mu_);
        stop_requested_ = true;
        return false;
      }
      default:
        Log("session: unexpected client message; dropping connection");
        return false;
    }
  }
  if (session->assembler.corrupted()) {
    Log("session: broken framing; dropping connection");
    return false;
  }
  return true;
}

bool DbdcServer::PumpJob(Session* session) {
  const JobProgress progress = manager_.Poll(session->job_id);
  // One JobStatus per completed stage, even if several finished between
  // polls — the client sees the full stage ladder.
  while (session->stages_sent <
         std::min(progress.stages_done, kNumStages)) {
    ++session->stages_sent;
    JobStatusUpdate update;
    update.job_id = session->job_id;
    update.stages_done = session->stages_sent;
    if (!SendMsg(session, EncodeJobStatus(update))) return false;
  }
  if (progress.state != JobState::kDone &&
      progress.state != JobState::kFailed) {
    return true;
  }
  // Terminal: Wait() returns immediately and pins the outcome.
  const JobOutcome& outcome = manager_.Wait(session->job_id);
  bool sent = false;
  if (outcome.state == JobState::kDone) {
    JobResultMsg msg;
    msg.job_id = session->job_id;
    msg.result = outcome.result;
    msg.params_used = outcome.params_used;
    sent = SendMsg(session, EncodeJobResult(msg));
    Log("job " + std::to_string(session->job_id) + " done (" +
        std::to_string(outcome.result.labels.size()) + " points)");
  } else {
    JobRejected rejected;
    rejected.field = outcome.field;
    rejected.message = outcome.message;
    sent = SendMsg(session, EncodeJobRejected(rejected));
    Log("job " + std::to_string(session->job_id) + " failed: " +
        outcome.field + ": " + outcome.message);
  }
  if (sent) {
    MutexLock lock(&mu_);
    ++jobs_served_;
  }
  return false;  // Terminal message sent (or write failed): session over.
}

void DbdcServer::IoLoop() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (stop_requested_) break;
      if (options_.max_jobs_served != 0 &&
          jobs_served_ >= options_.max_jobs_served) {
        Log("served " + std::to_string(jobs_served_) + " jobs; exiting");
        break;
      }
    }

    std::vector<pollfd> pfds;
    pfds.reserve(sessions_.size() + 1);
    pfds.push_back(pollfd{listen_fd_.get(), POLLIN, 0});
    for (const std::unique_ptr<Session>& session : sessions_) {
      pfds.push_back(pollfd{session->fd.get(), POLLIN, 0});
    }
    (void)::poll(pfds.data(), pfds.size(), kPollMillis);

    // New connections.
    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        Fd client = AcceptTcp(listen_fd_.get());
        if (!client.valid()) break;
        if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
          Log("connection refused: max_sessions reached");
          continue;  // Fd closes on scope exit.
        }
        if (!SetNonBlocking(client.get())) continue;
        sessions_.push_back(std::make_unique<Session>(
            std::move(client), options_.max_frame_bytes));
        Log("client connected (" + std::to_string(sessions_.size()) +
            " sessions)");
      }
    }

    // Drain readable sessions, process frames, stream job updates.
    std::vector<std::uint8_t> chunk;
    for (std::size_t i = 0; i < sessions_.size();) {
      Session* session = sessions_[i].get();
      bool alive = true;
      bool peer_closed = false;
      for (;;) {
        chunk.clear();
        const ReadResult rr =
            ReadSomeFd(session->fd.get(), /*timeout_sec=*/0.0, kReadChunk,
                       &chunk);
        if (rr == ReadResult::kData) {
          session->assembler.Append(chunk);
          continue;
        }
        if (rr == ReadResult::kClosed || rr == ReadResult::kError) {
          peer_closed = true;
        }
        break;
      }
      if (alive) alive = HandleSessionFrames(session);
      if (alive && session->has_job) alive = PumpJob(session);
      if (alive && peer_closed) {
        // Orderly close with no pending frames. The job (if any) still
        // runs — admitted means promised — but no one is listening.
        Log("client disconnected");
        alive = false;
      }
      if (alive) {
        ++i;
      } else {
        sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  sessions_.clear();
  listen_fd_.Close();
}

}  // namespace dbdc::serve
