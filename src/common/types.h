#ifndef DBDC_COMMON_TYPES_H_
#define DBDC_COMMON_TYPES_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dbdc {

/// Identifier of a point within a Dataset. Ids are dense: 0 .. size()-1.
using PointId = std::int32_t;

/// A point is a runtime-dimensional coordinate vector.
using Point = std::vector<double>;

/// Cluster label assigned to a point. Non-negative values are cluster ids,
/// kNoise marks noise, kUnclassified marks a not-yet-visited point.
using ClusterId = std::int32_t;

inline constexpr ClusterId kNoise = -1;
inline constexpr ClusterId kUnclassified = -2;

}  // namespace dbdc

#endif  // DBDC_COMMON_TYPES_H_
