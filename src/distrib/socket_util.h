#ifndef DBDC_DISTRIB_SOCKET_UTIL_H_
#define DBDC_DISTRIB_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dbdc {

/// RAII file descriptor (POSIX). Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor now (idempotent).
  void Close();
  /// Releases ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port). On success returns a valid listening Fd and stores the bound
/// port in `*bound_port`; on failure returns an invalid Fd and stores
/// strerror text in `*error` (when non-null).
Fd ListenTcp(std::uint16_t port, int backlog, std::uint16_t* bound_port,
             std::string* error);

/// Connects to `host`:`port` with a wall-clock connect timeout. The
/// returned socket is blocking with TCP_NODELAY set. Invalid Fd +
/// `*error` on failure.
Fd ConnectTcp(const std::string& host, std::uint16_t port,
              double timeout_sec, std::string* error);

/// Accepts one pending connection (the caller saw POLLIN on
/// `listen_fd`); invalid Fd when none is pending or on error. The
/// returned socket is blocking with TCP_NODELAY set.
Fd AcceptTcp(int listen_fd);

/// Writes all of `bytes`, looping over short writes, with a wall-clock
/// deadline across the whole write. False on error, peer reset, or
/// deadline expiry.
bool WriteAllFd(int fd, std::span<const std::uint8_t> bytes,
                double timeout_sec);

/// One nonblocking-style read step under poll: waits up to `timeout_sec`
/// for readability, then reads at most `max_bytes` into `*out`
/// (appended). Returns:
///   kData      — appended >= 1 byte,
///   kTimeout   — nothing readable within the deadline,
///   kClosed    — orderly peer shutdown (EOF),
///   kError     — socket error.
enum class ReadResult { kData = 0, kTimeout, kClosed, kError };
ReadResult ReadSomeFd(int fd, double timeout_sec, std::size_t max_bytes,
                      std::vector<std::uint8_t>* out);

/// Marks `fd` nonblocking. False on fcntl failure.
bool SetNonBlocking(int fd);

}  // namespace dbdc

#endif  // DBDC_DISTRIB_SOCKET_UTIL_H_
