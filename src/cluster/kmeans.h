#ifndef DBDC_CLUSTER_KMEANS_H_
#define DBDC_CLUSTER_KMEANS_H_

#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/rng.h"
#include "common/types.h"

namespace dbdc {

/// Lloyd's k-means configuration.
struct KMeansParams {
  int max_iterations = 100;
  /// Converged when no centroid moves farther than this between rounds.
  double tolerance = 1e-9;
};

/// Result of a k-means run on a subset of a dataset.
struct KMeansResult {
  /// Final centroids (row-major coordinate vectors), exactly k of them.
  std::vector<Point> centroids;
  /// assignment[i] = centroid index of the i-th input point.
  std::vector<int> assignment;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;
  int iterations = 0;
};

/// Runs Lloyd's k-means on the points `members` of `data`, starting from
/// the given `initial_centroids` (their count fixes k).
///
/// DBDC's REP_kMeans local model calls this per local cluster with the
/// specific core points as starting centers (Sec. 5.2). Distances use the
/// Euclidean metric (centroid averaging assumes a vector space). Empty
/// clusters are repaired by reseeding the centroid at the point farthest
/// from its current centroid, keeping k constant.
KMeansResult RunKMeans(const Dataset& data, const std::vector<PointId>& members,
                       const std::vector<Point>& initial_centroids,
                       const KMeansParams& params);

/// Chooses k starting centroids from `members` with the k-means++
/// strategy (for standalone k-means use; DBDC seeds from specific core
/// points instead).
std::vector<Point> KMeansPlusPlusInit(const Dataset& data,
                                      const std::vector<PointId>& members,
                                      int k, Rng* rng);

}  // namespace dbdc

#endif  // DBDC_CLUSTER_KMEANS_H_
